//! The cycle-level out-of-order core.
//!
//! [`Core`] models the Table I superscalar pipeline stage by stage:
//! fetch (branch prediction, I-cache, taken-branch limits), decode latency,
//! rename (register allocation, speculation-engine actions), dispatch into
//! ROB/IQ/LQ/SQ, out-of-order issue constrained by functional-unit ports,
//! execution latencies including the data-cache hierarchy and
//! store-to-load forwarding, and in-order commit with mechanism validation.
//!
//! Documented simplifications (see `DESIGN.md`): the model is trace driven,
//! so wrong-path instructions are not executed — a mispredicted branch
//! stalls fetch until it resolves and then pays the redirect penalty; and
//! memory disambiguation is oracle-based (addresses travel with the trace).
//! Mechanism-relevant behaviour (rename, sharing, validation issue slots,
//! commit-time squash on mispredictions) is modelled in full.

#[cfg(feature = "obs")]
use crate::attribution::{RenameBlock, StageAttribution};
use crate::cache::{CacheHierarchy, MemRequest};
use crate::config::{CoreConfig, SchedulerKind};
use crate::engine::{Disposition, RenameAction, RenameContext, SpecEngine, ValidationKind};
use crate::regfile::{PhysRegFile, RegisterFiles, NOT_READY};
use crate::rename::RenameMap;
use crate::rob::{InflightInst, InstSlot, Rob, SrcRegs};
use crate::sched::{StoreQueue, WakeupQueue};
use crate::stats::SimStats;
use rsep_isa::{DynInst, OpClass, PhysReg};
use rsep_predictors::{PredictRequest, PredictorStack, PredictorStats};
use std::collections::VecDeque;

/// Statement-level gate for the `obs` observability instrumentation: the
/// body compiles (and costs) nothing unless the feature is enabled.
macro_rules! obs {
    ($($body:tt)*) => {
        #[cfg(feature = "obs")]
        {
            $($body)*
        }
    };
}

/// Cycles without a commit before the watchdog flushes the pipeline.
const WATCHDOG_FLUSH_CYCLES: u64 = 2_000;
/// Cycles without a commit before the simulation is declared wedged.
const WATCHDOG_DEADLOCK_CYCLES: u64 = 100_000;

/// Structured, fatal simulation failure.
///
/// Returned by [`Core::run`] instead of panicking, so a wedged simulation
/// fails its campaign cell (and is recorded as such in the result store)
/// rather than aborting the whole process mid-campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline made no forward progress for
    /// [`WATCHDOG_DEADLOCK_CYCLES`] despite watchdog recovery attempts.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Cycle of the last successful commit.
        last_commit_cycle: u64,
        /// ROB occupancy at the time.
        rob_len: usize,
        /// Scheduler occupancy at the time.
        iq_len: usize,
        /// Name of the speculation engine driving the core.
        engine: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle, last_commit_cycle, rob_len, iq_len, engine } => write!(
                f,
                "pipeline deadlock: no commit since cycle {last_commit_cycle} \
                 (now {cycle}; rob={rob_len}, iq={iq_len}, engine={engine})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// An instruction sitting in the fetch/decode queue.
#[derive(Debug, Clone)]
struct FetchedInst {
    inst: DynInst,
    /// Cycle at which it becomes visible to rename.
    ready_at: u64,
    /// Whether the front end mispredicted this branch.
    mispredicted: bool,
}

/// Rollback mark of one branch of the current fetch block: the fetch-side
/// bookkeeping watermark right after the branch's instruction was
/// enqueued. If the block's batched prediction stops at this branch, the
/// tail beyond the watermark is unwound — nothing past it has touched any
/// state outside the fetch stage's own buffers.
#[derive(Debug, Clone, Copy)]
struct FetchMark {
    /// Sequence number of the branch instruction.
    seq: u64,
    /// `fetch_queue.len()` after the branch was enqueued.
    queue_len: u32,
    /// `mem_batch.len()` after the branch was enqueued.
    mem_batch_len: u32,
    /// `fetch_pending.len()` after the branch was enqueued.
    fetch_pending_len: u32,
    /// `last_fetch_block` after the branch was enqueued.
    last_fetch_block: u64,
}

/// A pending validation µ-op (second issue of an RSEP-predicted
/// instruction, Section IV-F).
#[derive(Debug, Clone, Copy)]
struct PendingValidation {
    ready_at: u64,
    kind: ValidationKind,
    op: OpClass,
}

/// Per-cycle issue-port budget (Table I functional units).
#[derive(Debug)]
struct PortBudget {
    slots: usize,
    alu: usize,
    mul: usize,
    div: usize,
    fp: usize,
    fpmul: usize,
    fpdiv: usize,
    ldst: usize,
    st_only: usize,
}

impl PortBudget {
    fn new(config: &CoreConfig) -> PortBudget {
        PortBudget {
            slots: config.issue_width,
            alu: config.int_alu_ports,
            mul: config.int_mul_units,
            div: config.int_div_units,
            fp: config.fp_ports,
            fpmul: config.fp_mul_units,
            fpdiv: config.fp_div_units,
            ldst: config.load_ports,
            st_only: config.store_ports.saturating_sub(config.load_ports),
        }
    }

    fn exhausted(&self) -> bool {
        self.slots == 0
    }

    fn try_issue(&mut self, op: OpClass, div_free: bool, fpdiv_free: bool) -> bool {
        if self.slots == 0 {
            return false;
        }
        let ok = match op {
            OpClass::IntAlu
            | OpClass::Move
            | OpClass::ZeroIdiom
            | OpClass::Branch
            | OpClass::Nop => {
                if self.alu > 0 {
                    self.alu -= 1;
                    true
                } else {
                    false
                }
            }
            OpClass::IntMul => {
                if self.alu > 0 && self.mul > 0 {
                    self.alu -= 1;
                    self.mul -= 1;
                    true
                } else {
                    false
                }
            }
            OpClass::IntDiv => {
                if self.alu > 0 && self.div > 0 && div_free {
                    self.alu -= 1;
                    self.div -= 1;
                    true
                } else {
                    false
                }
            }
            OpClass::FpAlu => {
                if self.fp > 0 {
                    self.fp -= 1;
                    true
                } else {
                    false
                }
            }
            OpClass::FpMul => {
                if self.fp > 0 && self.fpmul > 0 {
                    self.fp -= 1;
                    self.fpmul -= 1;
                    true
                } else {
                    false
                }
            }
            OpClass::FpDiv => {
                if self.fp > 0 && self.fpdiv > 0 && fpdiv_free {
                    self.fp -= 1;
                    self.fpdiv -= 1;
                    true
                } else {
                    false
                }
            }
            OpClass::Load => {
                if self.ldst > 0 {
                    self.ldst -= 1;
                    true
                } else {
                    false
                }
            }
            OpClass::Store => {
                if self.st_only > 0 {
                    self.st_only -= 1;
                    true
                } else if self.ldst > 0 {
                    self.ldst -= 1;
                    true
                } else {
                    false
                }
            }
        };
        if ok {
            self.slots -= 1;
        }
        ok
    }

    /// Issues a validation µ-op (a simple comparison). `SameFu` charges the
    /// port class of the validated instruction; `AnyFu` prefers non-load
    /// ports and falls back to load/store ports only when nothing else is
    /// available (the bypass-network scheme of Section IV-F1b).
    fn try_validation(&mut self, kind: ValidationKind, op: OpClass) -> bool {
        if self.slots == 0 {
            return false;
        }
        let ok = match kind {
            ValidationKind::Free => true,
            ValidationKind::SameFu => match op {
                OpClass::Load => {
                    if self.ldst > 0 {
                        self.ldst -= 1;
                        true
                    } else {
                        false
                    }
                }
                OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => {
                    if self.fp > 0 {
                        self.fp -= 1;
                        true
                    } else {
                        false
                    }
                }
                _ => {
                    if self.alu > 0 {
                        self.alu -= 1;
                        true
                    } else {
                        false
                    }
                }
            },
            ValidationKind::AnyFu => {
                if self.alu > 0 {
                    self.alu -= 1;
                    true
                } else if self.fp > 0 {
                    self.fp -= 1;
                    true
                } else if self.st_only > 0 {
                    self.st_only -= 1;
                    true
                } else if self.ldst > 0 {
                    self.ldst -= 1;
                    true
                } else {
                    false
                }
            }
        };
        if ok && kind != ValidationKind::Free {
            self.slots -= 1;
        }
        ok
    }
}

/// The cycle-level core.
///
/// Generic over the speculation engine so every per-branch
/// ([`SpecEngine::on_branch`]) and per-instruction (`at_rename` /
/// `at_commit` / `release_register`) engine call is statically dispatched
/// and inlines into the pipeline loop — the monomorphised front end of
/// PR 9. `Core<Box<dyn SpecEngine>>` (the default parameter, served by the
/// forwarding impl on `Box`) keeps the dynamically-dispatched construction
/// surface for callers that pick the engine at runtime without naming its
/// type.
#[derive(Debug)]
pub struct Core<E: SpecEngine = Box<dyn SpecEngine>> {
    config: CoreConfig,
    clock: u64,
    hierarchy: CacheHierarchy,
    regs: RegisterFiles,
    spec_map: RenameMap,
    arch_map: RenameMap,
    rob: Rob,
    iq_count: usize,
    lq_count: usize,
    sq_count: usize,
    fetch_queue: VecDeque<FetchedInst>,
    replay: VecDeque<DynInst>,
    store_queue: StoreQueue,
    sched: WakeupQueue,
    /// Reused per-cycle buffer of the instructions selected for issue.
    issued_scratch: Vec<InstSlot>,
    /// Reused buffer for draining per-register waiter lists on writeback.
    wake_scratch: Vec<InstSlot>,
    /// The current cycle's memory accesses, handed to
    /// [`CacheHierarchy::access_batch`] once per stage instead of one
    /// hierarchy call per instruction.
    mem_batch: Vec<MemRequest>,
    /// Issued loads whose latency the batch resolves: `(slot, index into
    /// mem_batch)`.
    mem_loads: Vec<(InstSlot, u32)>,
    /// Fetched instructions awaiting their i-cache latency: `(index into
    /// fetch_queue, index into mem_batch)`.
    fetch_pending: Vec<(usize, u32)>,
    /// Monotonic dispatch counter; tags scheduler entries so stale ones
    /// (left behind by a squash) are recognised and dropped lazily.
    dispatch_gen: u64,
    pending_validations: Vec<PendingValidation>,
    /// The front-end predictor stack (TAGE + BTB + RAS + global history),
    /// consulted once per fetch block through
    /// [`PredictorStack::predict_block`].
    stack: PredictorStack,
    /// Per-predictor counter snapshot taken at [`Core::reset_stats`], so
    /// finalised statistics cover the measurement window only.
    predictor_baseline: Vec<(&'static str, PredictorStats)>,
    /// Reused buffer of the fetch block's branch-prediction requests.
    predict_requests: Vec<PredictRequest>,
    /// Per-request rollback marks: the fetch bookkeeping watermark right
    /// after the branch's instruction was enqueued (see
    /// [`Core::fetch_batched`]).
    predict_marks: Vec<FetchMark>,
    fetch_resume_at: u64,
    pending_redirect: Option<u64>,
    div_busy_until: u64,
    fpdiv_busy_until: u64,
    /// `log2(line_bytes)`, cached so the per-instruction fetch-block
    /// computation is a shift instead of a division.
    fetch_block_shift: u32,
    last_fetch_block: u64,
    engine: E,
    stats: SimStats,
    /// Per-stage cycle attribution (the `obs` observability feature).
    /// Deliberately outside [`SimStats`]: attribution describes the
    /// simulator's own stage utilization and is excluded from golden-stats
    /// comparisons and fingerprints (see `DESIGN.md`).
    #[cfg(feature = "obs")]
    attribution: StageAttribution,
    /// Latest completion cycle among issued loads that missed in the L1D —
    /// the issue stage's "waiting on memory" signal for attribution.
    #[cfg(feature = "obs")]
    miss_outstanding_until: u64,
    trace_done: bool,
    /// Last cycle of commit *or* watchdog recovery — paces the watchdog
    /// flushes.
    last_commit_cycle: u64,
    /// Last cycle an instruction actually committed. Unlike
    /// `last_commit_cycle` this is NOT reset by watchdog flushes, so a head
    /// that re-wedges after every recovery still trips the deadlock error
    /// instead of flushing forever.
    last_true_commit_cycle: u64,
}

impl Core<crate::engine::NullEngine> {
    /// Creates a baseline core (no speculation engine), fully
    /// monomorphised for [`NullEngine`](crate::engine::NullEngine) — its
    /// empty hooks compile away entirely.
    pub fn baseline(config: CoreConfig) -> Core<crate::engine::NullEngine> {
        Core::new(config, crate::engine::NullEngine)
    }
}

impl<E: SpecEngine> Core<E> {
    /// Creates a core with the given configuration and speculation engine.
    ///
    /// Passing the engine by value (any `E: SpecEngine`, concrete or
    /// boxed) monomorphises the whole pipeline for it; `Box<dyn
    /// SpecEngine>` still works for callers that need runtime selection.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`CoreConfig::validate`]).
    pub fn new(config: CoreConfig, engine: E) -> Core<E> {
        if let Err(problem) = config.validate() {
            panic!("invalid core configuration: {problem}");
        }
        let mut regs = RegisterFiles::new(config.int_prf_size, config.fp_prf_size);
        let spec_map = RenameMap::initial();
        // Reserve the physical registers backing the initial architectural
        // state so they never enter the free list.
        for (_, preg) in spec_map.iter() {
            if preg != PhysRegFile::zero_reg() {
                regs.file_mut(preg.class()).reserve(preg);
            }
            regs.set_ready_at(preg, 0);
        }
        let hierarchy = CacheHierarchy::new(&config);
        let rob = Rob::new(config.rob_size);
        Core {
            arch_map: spec_map.clone(),
            spec_map,
            regs,
            hierarchy,
            rob,
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            fetch_queue: VecDeque::new(),
            replay: VecDeque::new(),
            store_queue: StoreQueue::new(),
            sched: WakeupQueue::new(),
            issued_scratch: Vec::new(),
            wake_scratch: Vec::new(),
            mem_batch: Vec::new(),
            mem_loads: Vec::new(),
            fetch_pending: Vec::new(),
            dispatch_gen: 0,
            pending_validations: Vec::new(),
            stack: PredictorStack::table1(),
            predictor_baseline: Vec::new(),
            predict_requests: Vec::new(),
            predict_marks: Vec::new(),
            fetch_resume_at: 0,
            pending_redirect: None,
            div_busy_until: 0,
            fpdiv_busy_until: 0,
            fetch_block_shift: config.line_bytes.trailing_zeros(),
            last_fetch_block: u64::MAX,
            engine,
            stats: SimStats::default(),
            #[cfg(feature = "obs")]
            attribution: StageAttribution::default(),
            #[cfg(feature = "obs")]
            miss_outstanding_until: 0,
            trace_done: false,
            clock: 0,
            config,
            last_commit_cycle: 0,
            last_true_commit_cycle: 0,
        }
    }

    /// Current cycle.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Statistics accumulated since the last [`Core::reset_stats`].
    pub fn stats(&self) -> &SimStats {
        self.stats_snapshot()
    }

    fn stats_snapshot(&self) -> &SimStats {
        &self.stats
    }

    /// Resets measurement counters while keeping all microarchitectural
    /// state (used to separate warm-up from measurement, Section V). The
    /// predictor counters keep accumulating inside their structures; a
    /// snapshot taken here lets [`Core::take_stats`] report only the
    /// post-reset window, like every other `SimStats` counter.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        self.predictor_baseline = self.current_predictor_stats();
        obs! {
            self.attribution = StageAttribution::default();
        }
    }

    /// Per-stage cycle attribution accumulated since the last
    /// [`Core::reset_stats`]. `Some` only when the crate is built with the
    /// `obs` feature; `None` otherwise (the counters do not exist).
    // lint: exempt(obs-gate, accessor exists in both builds; returns None without obs)
    pub fn attribution(&self) -> Option<&crate::attribution::StageAttribution> {
        #[cfg(feature = "obs")]
        {
            Some(&self.attribution)
        }
        #[cfg(not(feature = "obs"))]
        {
            None
        }
    }

    /// Takes (and resets) the attribution; see [`Core::attribution`].
    // lint: exempt(obs-gate, accessor exists in both builds; returns None without obs)
    pub fn take_attribution(&mut self) -> Option<crate::attribution::StageAttribution> {
        #[cfg(feature = "obs")]
        {
            Some(std::mem::take(&mut self.attribution))
        }
        #[cfg(not(feature = "obs"))]
        {
            None
        }
    }

    /// The cumulative per-predictor counters (front-end stack first, then
    /// the speculation engine's predictors).
    fn current_predictor_stats(&self) -> Vec<(&'static str, PredictorStats)> {
        let mut stats = self.stack.stats();
        stats.extend(self.engine.predictor_stats());
        stats
    }

    /// Finalises and returns the statistics, attaching cache counters and
    /// the unified per-predictor counters (measured from the last
    /// [`Core::reset_stats`], like every other counter; the cache
    /// counters remain cumulative, as before this API existed).
    pub fn take_stats(&mut self) -> SimStats {
        let mut stats = std::mem::take(&mut self.stats);
        stats.cache = self.hierarchy.stats().to_vec();
        stats.predictors = self
            .current_predictor_stats()
            .into_iter()
            .map(|(family, cumulative)| {
                let baseline = self
                    .predictor_baseline
                    .iter()
                    .find(|(name, _)| *name == family)
                    .map(|(_, stats)| *stats)
                    .unwrap_or_default();
                (family, cumulative.since(&baseline))
            })
            .collect();
        stats
    }

    /// The speculation engine driving this core.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Validates internal register-file bookkeeping: the free lists must
    /// contain no duplicates (a duplicate means a physical register was
    /// double-freed, e.g. by the squash path) and must agree with the
    /// allocation bitmaps. Regression tests call this between run segments;
    /// debug builds also check it after every pipeline flush.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency found.
    pub fn validate_invariants(&self) {
        self.regs.validate_free_lists();
    }

    /// Runs until `commits` further instructions commit (or the trace ends
    /// and the pipeline drains). Returns the number of instructions
    /// actually committed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the pipeline makes no forward
    /// progress for a very long time despite watchdog recovery — a wedged
    /// simulation fails cleanly instead of panicking, so campaign runners
    /// can record the failed cell and continue.
    pub fn run(
        &mut self,
        trace: &mut impl Iterator<Item = DynInst>,
        commits: u64,
    ) -> Result<u64, SimError> {
        let target = self.stats.committed + commits;
        self.trace_done = false;
        self.last_commit_cycle = self.clock;
        self.last_true_commit_cycle = self.clock;
        while self.stats.committed < target {
            self.step(trace);
            if self.trace_done
                && self.rob.is_empty()
                && self.fetch_queue.is_empty()
                && self.replay.is_empty()
            {
                break;
            }
            // Watchdog: if the head of the ROB has not made progress for a
            // long time (a corner case of the speculative register-sharing
            // bookkeeping), recover with a full pipeline flush and replay —
            // the same recovery a real design would perform — instead of
            // wedging the simulation. This is counted in the statistics and
            // is rare enough not to perturb the results.
            if self.clock - self.last_commit_cycle >= WATCHDOG_FLUSH_CYCLES {
                // The deadlock bound is checked against the last *actual*
                // commit (not the last recovery), so it fires both when the
                // ROB is empty with fetch wedged and when the head keeps
                // re-wedging after every flush.
                if self.clock - self.last_true_commit_cycle >= WATCHDOG_DEADLOCK_CYCLES {
                    return Err(SimError::Deadlock {
                        cycle: self.clock,
                        last_commit_cycle: self.last_true_commit_cycle,
                        rob_len: self.rob.len(),
                        iq_len: self.iq_count,
                        engine: self.engine.name(),
                    });
                }
                if let Some(head_seq) = self.rob.head().map(|h| h.seq()) {
                    self.stats.watchdog_flushes += 1;
                    self.flush_younger(head_seq);
                    self.last_commit_cycle = self.clock;
                }
            }
        }
        Ok(self.stats.committed)
    }

    /// Advances the core by one cycle.
    fn step(&mut self, trace: &mut impl Iterator<Item = DynInst>) {
        self.resolve_redirect();
        self.commit();
        self.issue();
        self.rename_dispatch();
        self.fetch(trace);
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.stats.cycles += 1;
        obs! {
            self.attribution.cycles += 1;
        }
        self.clock += 1;
    }

    // ------------------------------------------------------------ commit

    fn commit(&mut self) {
        let mut committed_this_cycle = 0;
        while committed_this_cycle < self.config.commit_width {
            let ready = match self.rob.head() {
                Some(head) => head.is_completed(self.clock),
                None => false,
            };
            if !ready {
                break;
            }
            let entry = self.rob.pop_head().expect("head checked above");
            committed_this_cycle += 1;
            self.last_commit_cycle = self.clock;
            self.last_true_commit_cycle = self.clock;
            if entry.allocated_new_preg {
                if let Some(preg) = entry.dest_preg {
                    // The entry leaves the ROB; it no longer counts as an
                    // in-flight owner of its freshly allocated register.
                    self.regs.remove_inflight_owner(preg);
                }
            }
            // A mispredicted branch may commit in the same cycle it
            // resolves; make sure the front end is released.
            if self.pending_redirect == Some(entry.seq()) {
                self.fetch_resume_at =
                    self.fetch_resume_at.max(entry.complete_at + self.config.redirect_penalty);
                self.pending_redirect = None;
            }
            self.retire_resources(&entry);
            self.retire_registers(&entry);
            self.record_commit_stats(&entry);
            self.engine.at_commit(&entry.inst, entry.disposition, self.clock);
            if entry.disposition.is_misprediction() {
                self.stats.prediction_squashes += 1;
                self.flush_younger(entry.seq() + 1);
                break;
            }
        }
        obs! {
            self.attribution.record_commit(committed_this_cycle);
        }
    }

    fn retire_resources(&mut self, entry: &InflightInst) {
        if entry.uses_lq {
            self.lq_count -= 1;
        }
        if entry.uses_sq {
            self.sq_count -= 1;
            self.store_queue.remove(entry.seq());
        }
        if entry.in_iq {
            // An eliminated instruction never occupied the IQ, and an issued
            // one already released its entry; anything still marked in_iq at
            // commit would be a bookkeeping bug.
            debug_assert!(false, "instruction committed while still in the IQ");
        }
    }

    fn retire_registers(&mut self, entry: &InflightInst) {
        let (Some(dest), Some(dest_preg)) = (entry.inst.dest, entry.dest_preg) else {
            return;
        };
        if dest.is_zero_reg() {
            return;
        }
        let prev_arch = self.arch_map.rename(dest, dest_preg);
        if prev_arch == dest_preg || prev_arch == PhysRegFile::zero_reg() {
            return;
        }
        // A register may only return to the free list when (a) the sharing
        // engine agrees (ISRB reference counting), and (b) no architectural
        // or speculative mapping still points at it — move elimination and
        // register sharing both create multiple mappings to one physical
        // register (Section II-B: these optimisations rely on register
        // sharing support).
        let still_mapped = self.arch_map.maps_to(prev_arch) || self.spec_map.maps_to(prev_arch);
        if self.engine.release_register(prev_arch)
            && !still_mapped
            && self.regs.file(prev_arch.class()).is_allocated(prev_arch)
        {
            self.regs.free(prev_arch);
        }
    }

    fn record_commit_stats(&mut self, entry: &InflightInst) {
        let inst = &entry.inst;
        self.stats.committed += 1;
        if inst.op.is_load() {
            self.stats.committed_loads += 1;
        }
        if inst.op.is_store() {
            self.stats.committed_stores += 1;
        }
        if inst.op.is_branch() {
            self.stats.committed_branches += 1;
            if entry.branch_mispredicted {
                self.stats.branch_mispredictions += 1;
            }
        }
        if inst.eligible_for_prediction() {
            self.stats.eligible_instructions += 1;
        }
        self.stats.coverage.record(entry.disposition, inst.op.is_load());
        match entry.disposition {
            Disposition::ZeroPred { correct }
            | Disposition::DistPred { correct }
            | Disposition::ValuePred { correct } => {
                if correct {
                    self.stats.correct_predictions += 1;
                } else {
                    self.stats.incorrect_predictions += 1;
                }
            }
            _ => {}
        }
    }

    fn flush_younger(&mut self, from_seq: u64) {
        let mut to_replay: Vec<DynInst> =
            Vec::with_capacity(self.rob.len() + self.fetch_queue.len() + self.replay.len());
        {
            // Split borrows: the squash callback updates the queue counters
            // and register file while the ROB drains its tail in place
            // (no intermediate Vec of squashed entries).
            let Core { rob, regs, iq_count, lq_count, sq_count, .. } = self;
            rob.squash_from_each(from_seq, |entry| {
                if entry.in_iq {
                    *iq_count -= 1;
                }
                if entry.uses_lq {
                    *lq_count -= 1;
                }
                if entry.uses_sq {
                    *sq_count -= 1;
                }
                if entry.allocated_new_preg {
                    if let Some(preg) = entry.dest_preg {
                        regs.remove_inflight_owner(preg);
                        if regs.file(preg.class()).is_allocated(preg) {
                            regs.free(preg);
                        }
                    }
                }
                to_replay.push(entry.inst);
            });
        }
        // Scheduler entries for the squashed instructions (ready set,
        // calendar, register/store waiter lists) are invalidated lazily:
        // replayed instructions re-dispatch under a fresh generation, so
        // stale `(seq, gen)` entries fail validation and are dropped when
        // next touched. Squash cost therefore stays proportional to the
        // number of squashed entries.
        self.store_queue.squash_from(from_seq);
        for fetched in self.fetch_queue.drain(..) {
            to_replay.push(fetched.inst);
        }
        // Older squashed instructions come before anything already waiting
        // for replay.
        for inst in std::mem::take(&mut self.replay) {
            to_replay.push(inst);
        }
        self.replay = to_replay.into();
        self.spec_map.restore_from(&self.arch_map);
        self.pending_validations.clear();
        self.pending_redirect = None;
        for preg in self.engine.on_squash(from_seq) {
            // Shared registers whose only remaining references were squashed
            // return to the free list (unless something else already freed
            // them, e.g. the provider itself was squashed, a mapping still
            // points at them, or a surviving in-flight instruction owns
            // them). The ownership test is the per-register refcount — O(1)
            // instead of the former full-ROB scan.
            if preg != PhysRegFile::zero_reg()
                && !self.regs.has_inflight_owner(preg)
                && !self.arch_map.maps_to(preg)
                && !self.spec_map.maps_to(preg)
                && self.regs.file(preg.class()).is_allocated(preg)
            {
                self.regs.free(preg);
            }
        }
        self.fetch_resume_at = self.fetch_resume_at.max(self.clock + self.config.redirect_penalty);
        self.last_fetch_block = u64::MAX;
        // Squash recovery is the path where register bookkeeping could
        // double-free; in debug builds, verify the free lists after every
        // flush so any regression trips immediately.
        #[cfg(debug_assertions)]
        self.regs.validate_free_lists();
    }

    // ---------------------------------------------------------- redirect

    fn resolve_redirect(&mut self) {
        let Some(seq) = self.pending_redirect else {
            return;
        };
        if let Some(entry) = self.rob.find_by_seq(seq) {
            if entry.is_completed(self.clock) {
                self.fetch_resume_at =
                    self.fetch_resume_at.max(entry.complete_at + self.config.redirect_penalty);
                self.pending_redirect = None;
            }
        }
    }

    // ------------------------------------------------------------- issue

    fn issue(&mut self) {
        match self.config.scheduler {
            SchedulerKind::EventDriven => self.issue_event(),
            SchedulerKind::Polling => self.issue_polling(),
        }
    }

    /// Issues validation µ-ops first: they are prioritised so they issue
    /// back-to-back with the instruction they validate (Section IV-F1).
    fn issue_validations(&mut self, ports: &mut PortBudget) {
        if self.pending_validations.is_empty() {
            return;
        }
        let clock = self.clock;
        let mut conflicts = 0u64;
        let mut issued_validations = 0u64;
        self.pending_validations.retain(|v| {
            if v.ready_at > clock {
                return true;
            }
            if ports.try_validation(v.kind, v.op) {
                issued_validations += 1;
                false
            } else {
                conflicts += 1;
                true
            }
        });
        self.stats.validation_issues += issued_validations;
        self.stats.validation_port_conflicts += conflicts;
        obs! {
            self.attribution.work.validations_issued += issued_validations;
        }
    }

    /// Event-driven select: iterate only the ready set (populated by wakeup
    /// events), oldest first. Observationally identical to
    /// [`Core::issue_polling`], which is kept as the oracle.
    fn issue_event(&mut self) {
        let clock = self.clock;
        self.sched.advance(clock);
        let mut ports = PortBudget::new(&self.config);
        let div_free = self.div_busy_until <= self.clock;
        let fpdiv_free = self.fpdiv_busy_until <= self.clock;
        #[cfg(feature = "obs")]
        let mut port_blocked = 0u64;
        #[cfg(feature = "obs")]
        let (validations_before, conflicts_before) =
            (self.stats.validation_issues, self.stats.validation_port_conflicts);
        self.issue_validations(&mut ports);

        // Walk the ready set in place, oldest first (nothing inserts into
        // it during select — wakeups land in the calendar and store
        // wakeups happen in apply — so index iteration sees exactly what a
        // snapshot would, without copying the set every cycle). The issue
        // decisions reuse a scratch buffer; no per-cycle allocation once
        // warm.
        let mut issued = std::mem::take(&mut self.issued_scratch);
        debug_assert!(issued.is_empty());
        let mut idx = 0;
        while idx < self.sched.ready_len() {
            if ports.exhausted() {
                break;
            }
            let slot = self.sched.ready_get(idx);
            // Handle resolution validates the generation tag: entries left
            // behind by a squash (or already handled) resolve to None and
            // are dropped here.
            let (op, mem) = match self.rob.get(slot) {
                Some(e) if e.in_iq && !e.issued && !e.eliminated => (e.inst.op, e.inst.mem),
                _ => {
                    self.sched.remove_ready_at(idx);
                    continue;
                }
            };
            if op.is_load() {
                if let Some(m) = mem {
                    // Memory disambiguation: the load reads from the
                    // youngest older same-double-word store; until that
                    // store has issued, park the load on it instead of
                    // re-polling every cycle.
                    if let Some(blocker) = self.store_queue.youngest_older(m.addr >> 3, slot.seq) {
                        if !blocker.issued {
                            self.sched.remove_ready_at(idx);
                            self.store_queue.add_waiter(blocker.seq, slot);
                            continue;
                        }
                    }
                }
            }
            if !ports.try_issue(op, div_free, fpdiv_free) {
                // Port conflict: stays in the ready set for next cycle.
                obs! {
                    port_blocked += 1;
                }
                idx += 1;
                continue;
            }
            self.sched.remove_ready_at(idx);
            issued.push(slot);
        }
        self.apply_issues(&issued);
        obs! {
            self.classify_issue_cycle(
                issued.len() as u64,
                validations_before,
                port_blocked,
                conflicts_before,
            );
        }
        issued.clear();
        self.issued_scratch = issued;
    }

    /// Classifies this cycle for issue-stage attribution from what the
    /// select loop observed (`obs` feature only).
    #[cfg(feature = "obs")]
    fn classify_issue_cycle(
        &mut self,
        issued_insts: u64,
        validations_before: u64,
        port_blocked: u64,
        conflicts_before: u64,
    ) {
        let issued = issued_insts + (self.stats.validation_issues - validations_before);
        let blocked = port_blocked + (self.stats.validation_port_conflicts - conflicts_before);
        let miss_outstanding = self.clock < self.miss_outstanding_until;
        self.attribution.classify_issue(issued, blocked, self.iq_count, miss_outstanding);
    }

    /// Polling select (the original implementation, kept as the oracle for
    /// the event-driven scheduler): re-derive readiness by scanning the
    /// whole ROB, oldest first.
    fn issue_polling(&mut self) {
        let clock = self.clock;
        let mut ports = PortBudget::new(&self.config);
        let div_free = self.div_busy_until <= self.clock;
        let fpdiv_free = self.fpdiv_busy_until <= self.clock;
        #[cfg(feature = "obs")]
        let mut port_blocked = 0u64;
        #[cfg(feature = "obs")]
        let (validations_before, conflicts_before) =
            (self.stats.validation_issues, self.stats.validation_port_conflicts);
        self.issue_validations(&mut ports);

        let mut issued = std::mem::take(&mut self.issued_scratch);
        debug_assert!(issued.is_empty());
        {
            let regs = &self.regs;
            let stores = &self.store_queue;
            for entry in self.rob.iter() {
                if ports.exhausted() {
                    break;
                }
                if !entry.in_iq || entry.issued || entry.eliminated {
                    continue;
                }
                let sources_ready = entry.src_pregs.iter().all(|&p| regs.is_ready(p, clock));
                if !sources_ready {
                    continue;
                }
                if entry.inst.op.is_load() {
                    // Memory disambiguation: wait for the youngest older
                    // same-double-word store (the one the load would read
                    // from) to have issued.
                    if let Some(m) = entry.inst.mem {
                        let blocked = stores
                            .youngest_older(m.addr >> 3, entry.seq())
                            .is_some_and(|s| !s.issued);
                        if blocked {
                            continue;
                        }
                    }
                }
                if !ports.try_issue(entry.inst.op, div_free, fpdiv_free) {
                    obs! {
                        port_blocked += 1;
                    }
                    continue;
                }
                issued.push(entry.slot());
            }
        }

        // Apply the issue decisions (needs mutable access to several parts
        // of `self`, hence the two-phase structure).
        self.apply_issues(&issued);
        obs! {
            self.classify_issue_cycle(
                issued.len() as u64,
                validations_before,
                port_blocked,
                conflicts_before,
            );
        }
        issued.clear();
        self.issued_scratch = issued;
    }

    /// Applies one cycle's issue decisions, batching the cycle's cache
    /// accesses into a single [`CacheHierarchy::access_batch`] call.
    ///
    /// Every per-instruction effect except the d-cache walk happens in
    /// issue (age) order in the first pass — exactly the order the former
    /// per-instruction path produced. Loads that neither forward from a
    /// store nor skip the cache enqueue a [`MemRequest`] instead; the batch
    /// resolves those in the same order, and a final pass assigns the
    /// completion cycles and performs the deferred writeback wakeups.
    /// Nothing issued in the same cycle observes a load's completion cycle
    /// between those passes, so the reordering is invisible — see
    /// `DESIGN.md` for the argument.
    fn apply_issues(&mut self, issued: &[InstSlot]) {
        debug_assert!(self.mem_batch.is_empty() && self.mem_loads.is_empty());
        for &slot in issued {
            self.begin_issue(slot);
        }
        if !self.mem_batch.is_empty() {
            let clock = self.clock;
            self.hierarchy.access_batch(&mut self.mem_batch, clock);
            let loads = std::mem::take(&mut self.mem_loads);
            for &(slot, request_idx) in &loads {
                let latency = self.mem_batch[request_idx as usize].latency;
                obs! {
                    if latency > self.config.l1d_latency {
                        self.attribution.work.load_misses += 1;
                        self.miss_outstanding_until =
                            self.miss_outstanding_until.max(clock + latency);
                    }
                }
                self.finish_load_issue(slot, clock + latency);
            }
            self.mem_loads = loads;
            self.mem_loads.clear();
            self.mem_batch.clear();
        }
    }

    /// First-pass half of issuing one instruction (see
    /// [`Core::apply_issues`]): everything except resolving a load's cache
    /// latency.
    fn begin_issue(&mut self, slot: InstSlot) {
        let clock = self.clock;
        let entry = self.rob.get(slot).expect("issued instruction must be in the ROB");
        let op = entry.inst.op;
        let mem = entry.inst.mem;
        let pc = entry.inst.pc;
        let seq = entry.seq();
        obs! {
            self.attribution.work.insts_issued += 1;
            if op.is_load() {
                self.attribution.work.loads_issued += 1;
            }
            if op.is_store() {
                self.attribution.work.stores_issued += 1;
            }
        }
        // `None` means "a batched cache access resolves it".
        let complete_at = match op {
            OpClass::Load => {
                let m = mem.expect("loads carry an address");
                let dword = m.addr >> 3;
                // Store-to-load forwarding reads the *youngest older*
                // same-double-word store — the store whose value the load
                // actually observes — not the first or slowest match.
                let forwarding = self
                    .store_queue
                    .youngest_older(dword, seq)
                    .filter(|s| s.issued)
                    .map(|s| s.complete_at);
                match forwarding {
                    Some(store_ready) => {
                        self.stats.stlf_forwards += 1;
                        Some(store_ready.max(clock) + self.config.stlf_latency)
                    }
                    None => {
                        self.mem_loads.push((slot, self.mem_batch.len() as u32));
                        self.mem_batch.push(MemRequest::load(pc, m.addr));
                        None
                    }
                }
            }
            OpClass::Store => {
                if let Some(m) = mem {
                    // Stores probe the cache for the write allocate but do
                    // not delay commit on it: the latency is discarded.
                    self.mem_batch.push(MemRequest::store(pc, m.addr));
                }
                Some(clock + 1)
            }
            _ => Some(clock + u64::from(op.base_latency())),
        };

        if let Some(complete_at) = complete_at {
            if op == OpClass::IntDiv {
                self.div_busy_until = complete_at;
            }
            if op == OpClass::FpDiv {
                self.fpdiv_busy_until = complete_at;
            }
        }

        let needs_validation;
        let dest_to_mark;
        {
            let entry = self.rob.get_mut(slot).expect("issued instruction must be in the ROB");
            entry.issued = true;
            entry.in_iq = false;
            if let Some(complete_at) = complete_at {
                entry.complete_at = complete_at;
            }
            needs_validation = entry.needs_validation_issue;
            dest_to_mark = entry.wakeup_dest();
        }
        self.iq_count -= 1;
        if let Some(complete_at) = complete_at {
            if let Some(preg) = dest_to_mark {
                self.set_ready_and_wake(preg, complete_at);
            }
            if op == OpClass::Store && mem.is_some() {
                // The store's data is now en route: loads parked on it
                // resume.
                for w in self.store_queue.mark_issued(seq, complete_at) {
                    self.sched.insert_ready(w);
                }
            }
        }
        if let Some(kind) = needs_validation {
            if kind != ValidationKind::Free {
                self.pending_validations.push(PendingValidation { ready_at: clock + 1, kind, op });
            }
        }
    }

    /// Second-pass half of issuing a load whose latency came from the
    /// batched cache walk: assign the completion cycle and wake dependents.
    fn finish_load_issue(&mut self, slot: InstSlot, complete_at: u64) {
        let entry = self.rob.get_mut(slot).expect("batched load cannot leave the ROB mid-cycle");
        entry.complete_at = complete_at;
        let dest_to_mark = entry.wakeup_dest();
        if let Some(preg) = dest_to_mark {
            self.set_ready_and_wake(preg, complete_at);
        }
    }

    /// Marks `preg` available from `cycle` and wakes the instructions whose
    /// last outstanding source it was (event-driven wakeup on writeback).
    fn set_ready_and_wake(&mut self, preg: PhysReg, cycle: u64) {
        self.regs.set_ready_at(preg, cycle);
        if self.config.scheduler == SchedulerKind::Polling {
            return;
        }
        let mut waiters = std::mem::take(&mut self.wake_scratch);
        self.regs.take_waiters_into(preg, &mut waiters);
        for &w in &waiters {
            let Some(entry) = self.rob.get_mut(w) else {
                continue; // squashed or re-dispatched; stale waiter
            };
            if !entry.in_iq || entry.issued {
                continue;
            }
            debug_assert!(entry.pending_srcs > 0, "waiter with no pending sources");
            entry.pending_srcs -= 1;
            entry.wake_at = entry.wake_at.max(cycle);
            if entry.pending_srcs == 0 {
                self.sched.schedule(entry.wake_at, w);
            }
        }
        waiters.clear();
        self.wake_scratch = waiters;
    }

    // ---------------------------------------------------------- rename

    fn rename_dispatch(&mut self) {
        // Attribution: when nothing renames this cycle, remember why the
        // loop stopped (the default — an empty or not-yet-decoded fetch
        // queue — is frontend starvation).
        #[cfg(feature = "obs")]
        let mut block = RenameBlock::Starved;
        let mut renamed = 0;
        while renamed < self.config.rename_width {
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            if front.ready_at > self.clock {
                break;
            }
            if self.rob.is_full() {
                self.stats.queue_stall_cycles += 1;
                obs! {
                    block = RenameBlock::RobFull;
                }
                break;
            }
            let inst = &front.inst;
            let executes_by_default = !matches!(inst.op, OpClass::Nop);
            if executes_by_default && self.iq_count >= self.config.iq_size {
                self.stats.queue_stall_cycles += 1;
                obs! {
                    block = RenameBlock::QueueFull;
                }
                break;
            }
            if inst.op.is_load() && self.lq_count >= self.config.lq_size {
                self.stats.queue_stall_cycles += 1;
                obs! {
                    block = RenameBlock::QueueFull;
                }
                break;
            }
            if inst.op.is_store() && self.sq_count >= self.config.sq_size {
                self.stats.queue_stall_cycles += 1;
                obs! {
                    block = RenameBlock::QueueFull;
                }
                break;
            }
            let produces = inst.produces_register();
            if produces {
                let class = inst.dest.expect("producer has a destination").class();
                // Moves and zero idioms never need a fresh register, but any
                // other producer might (depending on the engine's decision),
                // so require one free register up front to keep engine calls
                // side-effect-safe.
                let needs_possible_alloc = !matches!(inst.op, OpClass::Move | OpClass::ZeroIdiom);
                if needs_possible_alloc && self.regs.file(class).free_count() == 0 {
                    self.stats.prf_stall_cycles += 1;
                    obs! {
                        block = RenameBlock::PrfStall;
                    }
                    break;
                }
            }

            let fetched = self.fetch_queue.pop_front().expect("front checked above");
            let inst = fetched.inst;
            let action = if inst.produces_register() {
                let ctx = RenameContext { clock: self.clock, rob: &self.rob };
                self.engine.at_rename(&inst, &ctx)
            } else {
                RenameAction::Normal
            };
            self.dispatch_one(inst, action, fetched.mispredicted);
            renamed += 1;
        }
        obs! {
            self.attribution.classify_rename(renamed as u64, block);
        }
    }

    fn dispatch_one(&mut self, inst: DynInst, action: RenameAction, mispredicted: bool) {
        let clock = self.clock;
        // Renamed sources (the hardwired zero register is always ready).
        let mut src_pregs: SrcRegs =
            inst.sources().filter(|s| !s.is_zero_reg()).map(|s| self.spec_map.lookup(s)).collect();

        let mut dest_preg = None;
        let mut prev_preg = None;
        let mut allocated_new_preg = false;
        let mut eliminated = false;
        let mut needs_validation = None;
        let mut disposition = Disposition::from(action);

        if let Some(dest) = inst.dest {
            if dest.is_zero_reg() {
                // Writes to the architectural zero register are discarded.
                eliminated = true;
            } else {
                match action {
                    RenameAction::Normal => {
                        let preg = self
                            .regs
                            .allocate(dest.class())
                            .expect("free register availability checked before dispatch");
                        prev_preg = Some(self.spec_map.rename(dest, preg));
                        dest_preg = Some(preg);
                        allocated_new_preg = true;
                    }
                    RenameAction::PredictValue { .. } => {
                        let preg = self
                            .regs
                            .allocate(dest.class())
                            .expect("free register availability checked before dispatch");
                        prev_preg = Some(self.spec_map.rename(dest, preg));
                        dest_preg = Some(preg);
                        allocated_new_preg = true;
                        // Dependents may consume the predicted value right
                        // away: the register is ready immediately.
                        self.regs.set_ready_at(preg, clock);
                    }
                    RenameAction::EliminateZeroIdiom => {
                        let zero = PhysRegFile::zero_reg();
                        prev_preg = Some(self.spec_map.rename(dest, zero));
                        dest_preg = Some(zero);
                        eliminated = true;
                    }
                    RenameAction::PredictZero { .. } => {
                        let zero = PhysRegFile::zero_reg();
                        prev_preg = Some(self.spec_map.rename(dest, zero));
                        dest_preg = Some(zero);
                        // Still executes to validate the speculation.
                    }
                    RenameAction::EliminateMove => {
                        // Rename the destination onto the move's source.
                        let src = inst
                            .sources()
                            .next()
                            .expect("move elimination requires a source register");
                        let src_preg = if src.is_zero_reg() {
                            PhysRegFile::zero_reg()
                        } else {
                            self.spec_map.lookup(src)
                        };
                        prev_preg = Some(self.spec_map.rename(dest, src_preg));
                        dest_preg = Some(src_preg);
                        eliminated = true;
                    }
                    RenameAction::Share { provider_seq, correct, validation } => {
                        match self.rob.find_by_seq(provider_seq).and_then(|p| p.dest_preg) {
                            Some(provider_preg) => {
                                prev_preg = Some(self.spec_map.rename(dest, provider_preg));
                                dest_preg = Some(provider_preg);
                                // The predicted instruction is made dependent
                                // on the provider (Section IV-F1).
                                src_pregs.push(provider_preg);
                                needs_validation = Some(validation);
                                let _ = correct;
                            }
                            None => {
                                // Provider left the window between the
                                // engine's decision and dispatch; fall back
                                // to normal renaming.
                                let preg = self
                                    .regs
                                    .allocate(dest.class())
                                    .expect("free register availability checked before dispatch");
                                prev_preg = Some(self.spec_map.rename(dest, preg));
                                dest_preg = Some(preg);
                                allocated_new_preg = true;
                                disposition = Disposition::None;
                            }
                        }
                    }
                }
            }
        }

        if inst.op == OpClass::Nop {
            eliminated = true;
        }

        if allocated_new_preg {
            let preg = dest_preg.expect("a fresh allocation has a destination");
            self.regs.add_inflight_owner(preg);
        }

        let uses_lq = inst.op.is_load();
        let uses_sq = inst.op.is_store();
        if uses_lq {
            self.lq_count += 1;
        }
        if uses_sq {
            self.sq_count += 1;
            if let Some(m) = inst.mem {
                self.store_queue.push(inst.seq, m.addr >> 3);
            }
        }
        let in_iq = !eliminated;
        if in_iq {
            self.iq_count += 1;
        }

        // Event-driven wakeup bookkeeping: count the sources whose
        // availability cycle is still unknown and register a waiter on each
        // (woken when the producer is assigned a completion cycle). When
        // every source is already resolved, the instruction goes straight
        // onto the wakeup calendar.
        let gen = self.dispatch_gen;
        self.dispatch_gen += 1;
        let slot = InstSlot { seq: inst.seq, gen };
        let mut pending_srcs = 0u32;
        let mut wake_at = clock + 1;
        if in_iq && self.config.scheduler == SchedulerKind::EventDriven {
            for &p in &src_pregs {
                let ready = self.regs.ready_at(p);
                if ready == NOT_READY {
                    self.regs.add_waiter(p, slot);
                    pending_srcs += 1;
                } else {
                    wake_at = wake_at.max(ready);
                }
            }
            if pending_srcs == 0 {
                self.sched.schedule(wake_at, slot);
            }
        }

        self.rob.push(InflightInst {
            inst,
            dest_preg,
            prev_preg,
            allocated_new_preg,
            src_pregs,
            disposition,
            eliminated,
            in_iq,
            issued: false,
            complete_at: clock,
            renamed_at: clock,
            branch_mispredicted: mispredicted,
            needs_validation_issue: needs_validation,
            uses_lq,
            uses_sq,
            sched_gen: gen,
            pending_srcs,
            wake_at,
        });
    }

    // ------------------------------------------------------------- fetch

    fn fetch(&mut self, trace: &mut impl Iterator<Item = DynInst>) {
        if self.clock < self.fetch_resume_at || self.pending_redirect.is_some() {
            obs! {
                self.attribution.fetch.redirect += 1;
            }
            return;
        }
        debug_assert!(self.mem_batch.is_empty() && self.fetch_pending.is_empty());
        #[cfg(feature = "obs")]
        let queue_len_before = self.fetch_queue.len();
        #[cfg(feature = "obs")]
        let queue_was_full = self.fetch_queue.len() >= self.config.fetch_queue_size;
        self.fetch_block(trace);
        self.resolve_fetch_batch();
        obs! {
            // Even the batched frontend's misprediction unwind keeps the
            // mispredicted branch itself enqueued, so "the queue grew" is
            // exactly "at least one instruction was delivered".
            let delivered = self.fetch_queue.len() > queue_len_before;
            let drained = self.trace_done && self.replay.is_empty();
            let fetch = &mut self.attribution.fetch;
            if delivered {
                fetch.active += 1;
            } else if queue_was_full {
                fetch.queue_full += 1;
            } else if drained {
                fetch.drained += 1;
            } else {
                fetch.idle += 1;
            }
        }
    }

    /// Block fetch: enqueue the cycle's fetch block instruction by
    /// instruction (recording a rollback mark per branch), then resolve
    /// every branch of the block with **one** batched gather/probe/resolve
    /// [`PredictorStack::predict_block`] call — in fetch order, stopping at
    /// the first misprediction. The batched schedule was proven
    /// bit-identical to a per-branch table walk by the golden-stats and
    /// oracle tests before the sequential reference path was retired.
    /// Instructions enqueued past a mispredicted branch are unwound: until
    /// the block's i-cache batch resolves at the end of the fetch stage,
    /// nothing they did has left the fetch stage's own buffers, so popping
    /// them back into the replay queue and truncating the batch restores
    /// exactly the state a per-branch loop would have produced (see
    /// `DESIGN.md`).
    fn fetch_block(&mut self, trace: &mut impl Iterator<Item = DynInst>) {
        let mut requests = std::mem::take(&mut self.predict_requests);
        let mut marks = std::mem::take(&mut self.predict_marks);
        debug_assert!(requests.is_empty() && marks.is_empty());
        let mut fetched = 0;
        let mut taken_branches = 0;
        while fetched < self.config.fetch_width
            && self.fetch_queue.len() < self.config.fetch_queue_size
        {
            let inst = match self.replay.pop_front() {
                Some(inst) => inst,
                None => match trace.next() {
                    Some(inst) => inst,
                    None => {
                        self.trace_done = true;
                        break;
                    }
                },
            };
            let branch = inst.branch;
            let is_taken = branch.map(|b| b.taken).unwrap_or(false);
            let seq = inst.seq;
            if let Some(branch) = branch {
                requests.push(PredictRequest::new(inst.pc, branch));
            }
            self.push_fetched(inst, false);
            if branch.is_some() {
                marks.push(FetchMark {
                    seq,
                    queue_len: self.fetch_queue.len() as u32,
                    mem_batch_len: self.mem_batch.len() as u32,
                    fetch_pending_len: self.fetch_pending.len() as u32,
                    last_fetch_block: self.last_fetch_block,
                });
            }
            fetched += 1;
            // The taken-branch budget is oracle information that travels
            // with the trace; mispredictions are discovered below.
            if is_taken {
                taken_branches += 1;
                if taken_branches > self.config.fetch_taken_branches {
                    break;
                }
            }
        }

        // One call resolves the block's branches in fetch order.
        let resolved = self.stack.predict_block(&mut requests);

        // The engine observes exactly the resolved branches, in fetch
        // order (its history state is disjoint from the stack's, so
        // notifying after the batch is equivalent to interleaving).
        for request in &requests[..resolved] {
            self.engine.on_branch(request.pc, request.branch.taken);
        }

        if resolved > 0 && requests[resolved - 1].mispredicted {
            // The block ends at the mispredicted branch: flag it, block
            // fetch until it resolves, and unwind everything younger.
            let mark = marks[resolved - 1];
            self.fetch_queue[mark.queue_len as usize - 1].mispredicted = true;
            self.pending_redirect = Some(mark.seq);
            while self.fetch_queue.len() > mark.queue_len as usize {
                let tail = self.fetch_queue.pop_back().expect("length checked above");
                self.replay.push_front(tail.inst);
            }
            self.mem_batch.truncate(mark.mem_batch_len as usize);
            self.fetch_pending.truncate(mark.fetch_pending_len as usize);
            self.last_fetch_block = mark.last_fetch_block;
        }

        requests.clear();
        self.predict_requests = requests;
        marks.clear();
        self.predict_marks = marks;
    }

    /// Enqueues one fetched instruction, charging the instruction cache
    /// once per new cache block (the access joins the cycle's memory
    /// batch; a miss's extra latency is patched into `ready_at` when the
    /// batch resolves).
    fn push_fetched(&mut self, inst: DynInst, mispredicted: bool) {
        let block = inst.pc >> self.fetch_block_shift;
        if block != self.last_fetch_block {
            self.fetch_pending.push((self.fetch_queue.len(), self.mem_batch.len() as u32));
            self.mem_batch.push(MemRequest::fetch(inst.pc));
            self.last_fetch_block = block;
        }
        let ready_at = self.clock + self.config.frontend_depth;
        self.fetch_queue.push_back(FetchedInst { inst, ready_at, mispredicted });
    }

    /// Resolves the fetch stage's i-cache batch and patches miss latencies
    /// into the affected instructions' `ready_at`.
    fn resolve_fetch_batch(&mut self) {
        if self.mem_batch.is_empty() {
            return;
        }
        self.hierarchy.access_batch(&mut self.mem_batch, self.clock);
        let pending = std::mem::take(&mut self.fetch_pending);
        for &(queue_idx, request_idx) in &pending {
            let latency = self.mem_batch[request_idx as usize].latency;
            let extra = latency.saturating_sub(self.config.l1i_latency);
            self.fetch_queue[queue_idx].ready_at += extra;
        }
        self.fetch_pending = pending;
        self.fetch_pending.clear();
        self.mem_batch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsep_isa::{ArchReg, BranchKind, DynInstBuilder};

    fn alu(seq: u64, pc: u64, dest: u8, src: Option<u8>, result: u64) -> DynInst {
        let mut b =
            DynInstBuilder::new(seq, pc, OpClass::IntAlu).dest(ArchReg::int(dest)).result(result);
        if let Some(s) = src {
            b = b.src(ArchReg::int(s));
        }
        b.build()
    }

    fn run_trace(insts: Vec<DynInst>) -> SimStats {
        let mut core = Core::baseline(CoreConfig::small_test());
        let count = insts.len() as u64;
        let mut trace = insts.into_iter();
        core.run(&mut trace, count).expect("no deadlock");
        core.take_stats()
    }

    #[test]
    fn independent_alu_instructions_reach_high_ipc() {
        // 8-wide core, fully independent single-cycle instructions: IPC
        // should be well above 2.
        let insts: Vec<DynInst> = (0..4000u64)
            .map(|i| alu(i, 0x40_0000 + (i % 16) * 4, (i % 8) as u8, None, i))
            .collect();
        let stats = run_trace(insts);
        assert_eq!(stats.committed, 4000);
        assert!(stats.ipc() > 2.0, "ipc = {}", stats.ipc());
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        // Every instruction depends on the previous one: IPC cannot exceed 1.
        let insts: Vec<DynInst> =
            (0..2000u64).map(|i| alu(i, 0x40_0000 + (i % 16) * 4, 1, Some(1), i)).collect();
        let stats = run_trace(insts);
        assert_eq!(stats.committed, 2000);
        assert!(stats.ipc() <= 1.05, "ipc = {}", stats.ipc());
        assert!(stats.ipc() > 0.5, "ipc = {}", stats.ipc());
    }

    #[test]
    fn long_latency_divides_throttle_ipc() {
        let insts: Vec<DynInst> = (0..1000u64)
            .map(|i| {
                DynInstBuilder::new(i, 0x40_0000 + (i % 8) * 4, OpClass::IntDiv)
                    .dest(ArchReg::int((i % 4) as u8))
                    .result(i)
                    .build()
            })
            .collect();
        let stats = run_trace(insts);
        // The single unpipelined divider (25 cycles) bounds IPC to 1/25.
        assert!(stats.ipc() < 0.06, "ipc = {}", stats.ipc());
    }

    #[test]
    fn loads_hitting_l1_are_faster_than_dram_misses() {
        let hot: Vec<DynInst> = (0..2000u64)
            .map(|i| {
                DynInstBuilder::new(i, 0x40_0000 + (i % 8) * 4, OpClass::Load)
                    .dest(ArchReg::int((i % 8) as u8))
                    .result(i)
                    .mem(0x1000_0000 + (i % 8) * 8, 8)
                    .build()
            })
            .collect();
        let cold: Vec<DynInst> = (0..2000u64)
            .map(|i| {
                DynInstBuilder::new(i, 0x40_0000 + (i % 8) * 4, OpClass::Load)
                    .dest(ArchReg::int((i % 8) as u8))
                    .result(i)
                    // Pseudo-randomly scattered addresses over 64 MB defeat
                    // the caches and the stride prefetcher.
                    .mem(0x1000_0000 + (i.wrapping_mul(2_654_435_761) % (1 << 26)) / 8 * 8, 8)
                    .build()
            })
            .collect();
        let hot_stats = run_trace(hot);
        let cold_stats = run_trace(cold);
        assert!(
            hot_stats.ipc() > cold_stats.ipc() * 1.5,
            "hot {} vs cold {}",
            hot_stats.ipc(),
            cold_stats.ipc()
        );
    }

    #[test]
    fn store_to_load_forwarding_keeps_dependent_pairs_fast() {
        // store to A; load from A; repeat with different A each iteration.
        let mut insts = Vec::new();
        let mut seq = 0u64;
        for i in 0..1000u64 {
            let addr = 0x2000_0000 + i * 64;
            insts.push(
                DynInstBuilder::new(seq, 0x40_0000, OpClass::Store)
                    .src(ArchReg::int(1))
                    .result(i)
                    .mem(addr, 8)
                    .build(),
            );
            seq += 1;
            insts.push(
                DynInstBuilder::new(seq, 0x40_0004, OpClass::Load)
                    .dest(ArchReg::int(2))
                    .result(i)
                    .mem(addr, 8)
                    .build(),
            );
            seq += 1;
        }
        let stats = run_trace(insts);
        assert_eq!(stats.committed, 2000);
        // Forwarded loads avoid the memory hierarchy entirely; even with
        // cold misses this stays reasonably fast.
        assert!(stats.ipc() > 0.5, "ipc = {}", stats.ipc());
    }

    #[test]
    fn predictable_branches_do_not_stall_fetch() {
        let mut insts = Vec::new();
        for i in 0..3000u64 {
            if i % 4 == 3 {
                insts.push(
                    DynInstBuilder::new(i, 0x40_0000 + (i % 4) * 4, OpClass::Branch)
                        .branch(BranchKind::Conditional, false, 0x40_0000)
                        .build(),
                );
            } else {
                insts.push(alu(i, 0x40_0000 + (i % 4) * 4, (i % 8) as u8, None, i));
            }
        }
        let stats = run_trace(insts);
        assert!(stats.branch_mpki() < 5.0, "mpki = {}", stats.branch_mpki());
        assert!(stats.ipc() > 1.5, "ipc = {}", stats.ipc());
    }

    #[test]
    fn random_branches_cost_performance() {
        let mut easy = Vec::new();
        let mut hard = Vec::new();
        let mut flip = 0x12345u64;
        for i in 0..4000u64 {
            let pc = 0x40_0000 + (i % 8) * 4;
            if i % 4 == 3 {
                easy.push(
                    DynInstBuilder::new(i, pc, OpClass::Branch)
                        .branch(BranchKind::Conditional, true, pc + 4)
                        .build(),
                );
                flip = flip.wrapping_mul(6364136223846793005).wrapping_add(1);
                let taken = (flip >> 33) & 1 == 1;
                hard.push(
                    DynInstBuilder::new(i, pc, OpClass::Branch)
                        .branch(BranchKind::Conditional, taken, pc + 4)
                        .build(),
                );
            } else {
                easy.push(alu(i, pc, (i % 8) as u8, None, i));
                hard.push(alu(i, pc, (i % 8) as u8, None, i));
            }
        }
        let easy_stats = run_trace(easy);
        let hard_stats = run_trace(hard);
        assert!(
            easy_stats.ipc() > hard_stats.ipc() * 1.2,
            "easy {} vs hard {}",
            easy_stats.ipc(),
            hard_stats.ipc()
        );
        assert!(hard_stats.branch_mispredictions > 100);
    }

    #[test]
    fn commits_match_trace_length_exactly() {
        let insts: Vec<DynInst> = (0..777u64).map(|i| alu(i, 0x40_0000, 1, None, i)).collect();
        let stats = run_trace(insts);
        assert_eq!(stats.committed, 777);
    }

    #[test]
    fn reset_stats_separates_warmup_from_measurement() {
        let mut core = Core::baseline(CoreConfig::small_test());
        let mut trace =
            (0..2000u64).map(|i| alu(i, 0x40_0000 + (i % 8) * 4, (i % 8) as u8, None, i));
        core.run(&mut trace.by_ref().take(1000).collect::<Vec<_>>().into_iter(), 1000).unwrap();
        assert_eq!(core.stats().committed, 1000);
        core.reset_stats();
        assert_eq!(core.stats().committed, 0);
        core.run(&mut trace, 1000).unwrap();
        assert_eq!(core.stats().committed, 1000);
        assert!(core.stats().cycles < core.clock());
    }

    #[test]
    fn forwarding_reads_the_youngest_older_store() {
        // store A (data from a slow divide chain) and store B (data ready)
        // write the same double-word; a younger load must forward from B —
        // the *youngest older* store — without waiting for A to issue.
        for scheduler in [SchedulerKind::EventDriven, SchedulerKind::Polling] {
            let mut config = CoreConfig::small_test();
            config.scheduler = scheduler;
            let mut core = Core::baseline(config);
            let addr = 0x2000_0000u64;
            let insts = vec![
                DynInstBuilder::new(0, 0x40_0000, OpClass::IntDiv)
                    .dest(ArchReg::int(7))
                    .result(1)
                    .build(),
                DynInstBuilder::new(1, 0x40_0004, OpClass::IntDiv)
                    .dest(ArchReg::int(7))
                    .src(ArchReg::int(7))
                    .result(2)
                    .build(),
                // Store A: waits ~50 cycles for the divide chain.
                DynInstBuilder::new(2, 0x40_0008, OpClass::Store)
                    .src(ArchReg::int(7))
                    .result(2)
                    .mem(addr, 8)
                    .build(),
                // Store B: same address, data ready immediately.
                DynInstBuilder::new(3, 0x40_000c, OpClass::Store)
                    .src(ArchReg::int(1))
                    .result(9)
                    .mem(addr, 8)
                    .build(),
                DynInstBuilder::new(4, 0x40_0010, OpClass::Load)
                    .dest(ArchReg::int(2))
                    .result(9)
                    .mem(addr, 8)
                    .build(),
            ];
            let mut trace = insts.into_iter();
            let mut load_issued = false;
            for _ in 0..300 {
                core.step(&mut trace);
                if core.rob.find_by_seq(4).is_some_and(|e| e.issued) {
                    load_issued = true;
                    break;
                }
            }
            assert!(load_issued, "{scheduler:?}: load never issued");
            // The decisive ordering check: at the cycle the load issued,
            // the *older* same-address store A is still waiting on its
            // divide chain. Under the old any-older-store rule the load
            // could not have issued yet.
            let store_a = core.rob.find_by_seq(2).expect("store A still in flight");
            assert!(
                !store_a.issued,
                "{scheduler:?}: store A must still be waiting on the divide chain"
            );
            assert_eq!(core.stats.stlf_forwards, 1, "{scheduler:?}: expected one forwarding");
        }
    }

    #[test]
    fn wedged_pipeline_returns_a_structured_error_instead_of_panicking() {
        let mut core = Core::baseline(CoreConfig::small_test());
        // Force the wedge directly: fetch is blocked forever with an empty
        // ROB, so no instruction can ever commit and the deadlock watchdog
        // must fire (as a SimError, not a panic).
        core.fetch_resume_at = u64::MAX;
        let insts: Vec<DynInst> = (0..10u64).map(|i| alu(i, 0x40_0000, 1, None, i)).collect();
        let mut trace = insts.into_iter();
        let err = core.run(&mut trace, 10).expect_err("a wedged pipeline must fail");
        let SimError::Deadlock { cycle, last_commit_cycle, rob_len, iq_len, engine } = &err;
        assert!(*cycle >= WATCHDOG_DEADLOCK_CYCLES);
        assert_eq!(*last_commit_cycle, 0);
        assert_eq!(*rob_len, 0);
        assert_eq!(*iq_len, 0);
        assert_eq!(engine, "baseline");
        assert!(err.to_string().contains("pipeline deadlock"), "display: {err}");
    }

    #[test]
    fn register_hoarding_engine_wedges_into_a_sim_error() {
        // An engine that never releases registers leaks the PRF dry: rename
        // stalls forever, the ROB drains, and nothing commits again. The
        // run must fail with a structured deadlock, not hang or panic.
        #[derive(Debug)]
        struct HoardingEngine;
        impl SpecEngine for HoardingEngine {
            fn name(&self) -> String {
                "hoarder".to_string()
            }
            fn release_register(&mut self, _preg: PhysReg) -> bool {
                false
            }
        }
        let mut config = CoreConfig::small_test();
        config.int_prf_size = 40; // 33 pinned + 7 headroom: leaks out fast
        let mut core = Core::new(config, Box::new(HoardingEngine));
        let insts: Vec<DynInst> = (0..50_000u64)
            .map(|i| alu(i, 0x40_0000 + (i % 8) * 4, (i % 8) as u8, None, i))
            .collect();
        let mut trace = insts.into_iter();
        let err = core.run(&mut trace, 50_000).expect_err("the PRF leak must wedge the core");
        assert!(matches!(err, SimError::Deadlock { .. }), "got: {err}");
    }

    #[test]
    fn event_driven_select_matches_the_polling_oracle_on_generated_traces() {
        use rsep_trace::{BenchmarkProfile, TraceGenerator};
        for name in ["gcc", "mcf", "libquantum"] {
            let profile = BenchmarkProfile::by_name(name).unwrap();
            for seed in [1u64, 7] {
                let run = |scheduler: SchedulerKind| {
                    let mut config = CoreConfig::small_test();
                    config.scheduler = scheduler;
                    let mut core = Core::baseline(config);
                    let mut trace = TraceGenerator::new(&profile, seed);
                    core.run(&mut trace, 20_000).unwrap();
                    core.take_stats()
                };
                let event = run(SchedulerKind::EventDriven);
                let polling = run(SchedulerKind::Polling);
                assert_eq!(event, polling, "{name} seed {seed}: scheduler modes diverge");
            }
        }
    }

    #[test]
    fn prf_pressure_is_observable() {
        // More in-flight producers than physical registers: rename must
        // stall on the free list at least occasionally.
        let mut config = CoreConfig::small_test();
        config.int_prf_size = 40; // 32 architectural + 8 headroom
        config.rob_size = 64;
        let mut core = Core::baseline(config);
        let insts: Vec<DynInst> = (0..4000u64)
            .map(|i| {
                DynInstBuilder::new(i, 0x40_0000 + (i % 16) * 4, OpClass::Load)
                    .dest(ArchReg::int((i % 8) as u8))
                    .result(i)
                    .mem(0x3000_0000 + (i % 512) * 8192, 8)
                    .build()
            })
            .collect();
        let mut trace = insts.into_iter();
        core.run(&mut trace, 4000).unwrap();
        let stats = core.take_stats();
        assert!(stats.prf_stall_cycles > 0, "expected register-pressure stalls");
    }
}

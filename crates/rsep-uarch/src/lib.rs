//! # rsep-uarch
//!
//! Cycle-level out-of-order superscalar core model for the RSEP
//! reproduction.
//!
//! The paper evaluates RSEP on gem5 with the aggressive 8-wide
//! configuration of Table I. This crate rebuilds that substrate from
//! scratch as a trace-driven cycle-level model:
//!
//! * [`CoreConfig`] — the Table I parameters (pipeline widths, ROB/IQ/LQ/SQ
//!   sizes, register files, functional-unit ports, cache hierarchy, DRAM
//!   latency).
//! * [`CacheHierarchy`] — L1I/L1D/L2/L3 with stride/stream prefetchers and a
//!   flat memory latency.
//! * [`Core`] — the pipeline itself (fetch with TAGE/BTB/RAS, rename,
//!   dispatch, out-of-order issue with port contention, store-to-load
//!   forwarding, in-order commit).
//! * [`SpecEngine`] — the hook through which `rsep-core` plugs every
//!   mechanism studied in the paper (zero-idiom elimination, move
//!   elimination, zero prediction, RSEP register sharing, value
//!   prediction); [`NullEngine`] gives the baseline.
//! * [`SimStats`] — IPC, branch behaviour, per-mechanism coverage
//!   (Figure 5) and squash counts.
//!
//! # Example
//!
//! ```
//! use rsep_trace::{BenchmarkProfile, TraceGenerator};
//! use rsep_uarch::{Core, CoreConfig};
//!
//! let profile = BenchmarkProfile::by_name("gcc").unwrap();
//! let mut trace = TraceGenerator::new(&profile, 1);
//! let mut core = Core::baseline(CoreConfig::small_test());
//! core.run(&mut trace, 5_000).expect("simulation deadlocked");
//! let stats = core.take_stats();
//! assert!(stats.committed >= 5_000);
//! assert!(stats.ipc() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod attribution;
pub mod cache;
pub mod config;
pub mod core;
pub mod engine;
pub mod regfile;
pub mod rename;
pub mod rob;
pub mod sched;
pub mod stats;

// lint: exempt(obs-gate, re-export of the always-compiled attribution types)
pub use attribution::{FetchCycles, IssueCycles, RenameBlock, RenameCycles};
// lint: exempt(obs-gate, re-export of the always-compiled attribution types)
pub use attribution::{StageAttribution, WorkCounts};
pub use cache::{AccessKind, Cache, CacheHierarchy, CacheStats, MemRequest, StridePrefetcher};
pub use config::{CoreConfig, SchedulerKind};
pub use core::{Core, SimError};
pub use engine::{
    Disposition, NullEngine, RenameAction, RenameContext, SpecEngine, ValidationKind,
};
pub use regfile::{PhysRegFile, RegisterFiles, NOT_READY};
pub use rename::RenameMap;
pub use rob::{InflightInst, InstSlot, Rob, SrcRegs};
pub use sched::{StoreQueue, WakeupQueue};
pub use stats::{CoverageCounts, SimStats};

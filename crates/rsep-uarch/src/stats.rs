//! Simulation statistics.

use crate::cache::CacheStats;
use crate::engine::Disposition;
use rsep_predictors::PredictorStats;

/// Per-mechanism coverage counts (the quantities plotted in Figure 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageCounts {
    /// Zero idioms eliminated at Decode/Rename.
    pub zero_idiom_elim: u64,
    /// Moves eliminated at Rename.
    pub move_elim: u64,
    /// Non-load instructions zero predicted.
    pub zero_pred: u64,
    /// Loads zero predicted.
    pub load_zero_pred: u64,
    /// Non-load instructions distance predicted (RSEP).
    pub dist_pred: u64,
    /// Loads distance predicted (RSEP).
    pub load_dist_pred: u64,
    /// Non-load instructions value predicted.
    pub value_pred: u64,
    /// Loads value predicted.
    pub load_value_pred: u64,
}

impl CoverageCounts {
    /// Records a committed instruction's disposition.
    pub fn record(&mut self, disposition: Disposition, is_load: bool) {
        match disposition {
            Disposition::None => {}
            Disposition::ZeroIdiomElim => self.zero_idiom_elim += 1,
            Disposition::MoveElim => self.move_elim += 1,
            Disposition::ZeroPred { .. } => {
                if is_load {
                    self.load_zero_pred += 1;
                } else {
                    self.zero_pred += 1;
                }
            }
            Disposition::DistPred { .. } => {
                if is_load {
                    self.load_dist_pred += 1;
                } else {
                    self.dist_pred += 1;
                }
            }
            Disposition::ValuePred { .. } => {
                if is_load {
                    self.load_value_pred += 1;
                } else {
                    self.value_pred += 1;
                }
            }
        }
    }

    /// Total committed instructions covered by any mechanism.
    pub fn total_covered(&self) -> u64 {
        self.zero_idiom_elim
            + self.move_elim
            + self.zero_pred
            + self.load_zero_pred
            + self.dist_pred
            + self.load_dist_pred
            + self.value_pred
            + self.load_value_pred
    }

    /// Instructions covered specifically by distance prediction.
    pub fn total_dist_pred(&self) -> u64 {
        self.dist_pred + self.load_dist_pred
    }

    /// Instructions covered specifically by value prediction.
    pub fn total_value_pred(&self) -> u64 {
        self.value_pred + self.load_value_pred
    }

    /// Accumulates another checkpoint's coverage counts into this one.
    pub fn merge(&mut self, other: &CoverageCounts) {
        self.zero_idiom_elim += other.zero_idiom_elim;
        self.move_elim += other.move_elim;
        self.zero_pred += other.zero_pred;
        self.load_zero_pred += other.load_zero_pred;
        self.dist_pred += other.dist_pred;
        self.load_dist_pred += other.load_dist_pred;
        self.value_pred += other.value_pred;
        self.load_value_pred += other.load_value_pred;
    }
}

/// End-to-end statistics of one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Cycles simulated while measuring.
    pub cycles: u64,
    /// Instructions committed while measuring.
    pub committed: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed branches.
    pub committed_branches: u64,
    /// Branches the front end mispredicted.
    pub branch_mispredictions: u64,
    /// Pipeline squashes caused by value / equality / zero mispredictions
    /// detected at commit.
    pub prediction_squashes: u64,
    /// Correct speculative predictions committed (RSEP + VP + zero pred).
    pub correct_predictions: u64,
    /// Incorrect speculative predictions committed.
    pub incorrect_predictions: u64,
    /// Committed instructions eligible for prediction (register-producing,
    /// not move/zero-idiom — the denominator of the paper's coverage
    /// metric).
    pub eligible_instructions: u64,
    /// Cycles during which rename stalled for lack of a free physical
    /// register.
    pub prf_stall_cycles: u64,
    /// Cycles during which rename stalled because the ROB/IQ/LQ/SQ was
    /// full.
    pub queue_stall_cycles: u64,
    /// Watchdog recoveries: full pipeline flushes triggered after a long
    /// period without commit (safety net of the timing model; should be
    /// rare — each one costs a redirect penalty plus a refill).
    pub watchdog_flushes: u64,
    /// Validation µ-ops issued (second issue of RSEP-predicted
    /// instructions).
    pub validation_issues: u64,
    /// Extra cycles validation µ-ops waited for an issue port.
    pub validation_port_conflicts: u64,
    /// Loads served by store-to-load forwarding from the youngest older
    /// same-address in-flight store.
    pub stlf_forwards: u64,
    /// Per-mechanism coverage (Figure 5).
    pub coverage: CoverageCounts,
    /// Cache statistics at the end of the run, per level.
    pub cache: Vec<(&'static str, CacheStats)>,
    /// Unified per-predictor statistics at the end of the run, labelled by
    /// family name (front-end stack first, then the speculation engine's
    /// predictors), merged across checkpoints with
    /// [`PredictorStats::merge`].
    pub predictors: Vec<(&'static str, PredictorStats)>,
    /// Sum of ROB occupancy sampled every cycle (for averaging).
    pub rob_occupancy_sum: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.branch_mispredictions as f64 * 1000.0 / self.committed as f64
        }
    }

    /// Fraction of committed instructions covered by any mechanism.
    pub fn coverage_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.coverage.total_covered() as f64 / self.committed as f64
        }
    }

    /// Fraction of *eligible* instructions covered by speculative
    /// prediction (the 28.5% average coverage metric of Section VI-B).
    pub fn eligible_coverage_fraction(&self) -> f64 {
        if self.eligible_instructions == 0 {
            0.0
        } else {
            (self.coverage.total_dist_pred()
                + self.coverage.total_value_pred()
                + self.coverage.zero_pred
                + self.coverage.load_zero_pred) as f64
                / self.eligible_instructions as f64
        }
    }

    /// Prediction accuracy over committed speculative predictions (the
    /// >99.5% figure of Section VI-B).
    pub fn prediction_accuracy(&self) -> f64 {
        let total = self.correct_predictions + self.incorrect_predictions;
        if total == 0 {
            1.0
        } else {
            self.correct_predictions as f64 / total as f64
        }
    }

    /// Average ROB occupancy.
    pub fn avg_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Accumulates another run's statistics into this one (used to merge
    /// per-checkpoint results; the merge is order-independent, which the
    /// campaign engine relies on for thread-count-invariant results).
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.committed += other.committed;
        self.committed_loads += other.committed_loads;
        self.committed_stores += other.committed_stores;
        self.committed_branches += other.committed_branches;
        self.branch_mispredictions += other.branch_mispredictions;
        self.prediction_squashes += other.prediction_squashes;
        self.correct_predictions += other.correct_predictions;
        self.incorrect_predictions += other.incorrect_predictions;
        self.eligible_instructions += other.eligible_instructions;
        self.prf_stall_cycles += other.prf_stall_cycles;
        self.queue_stall_cycles += other.queue_stall_cycles;
        self.watchdog_flushes += other.watchdog_flushes;
        self.validation_issues += other.validation_issues;
        self.validation_port_conflicts += other.validation_port_conflicts;
        self.stlf_forwards += other.stlf_forwards;
        self.coverage.merge(&other.coverage);
        self.rob_occupancy_sum += other.rob_occupancy_sum;
        for (level, cache) in &other.cache {
            match self.cache.iter_mut().find(|(name, _)| name == level) {
                Some((_, mine)) => mine.merge(cache),
                None => self.cache.push((level, *cache)),
            }
        }
        for (family, stats) in &other.predictors {
            match self.predictors.iter_mut().find(|(name, _)| name == family) {
                Some((_, mine)) => mine.merge(stats),
                None => self.predictors.push((family, *stats)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki() {
        let stats = SimStats {
            cycles: 1000,
            committed: 2000,
            branch_mispredictions: 10,
            ..SimStats::default()
        };
        assert!((stats.ipc() - 2.0).abs() < 1e-12);
        assert!((stats.branch_mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let stats = SimStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.branch_mpki(), 0.0);
        assert_eq!(stats.coverage_fraction(), 0.0);
        assert_eq!(stats.eligible_coverage_fraction(), 0.0);
        assert_eq!(stats.prediction_accuracy(), 1.0);
        assert_eq!(stats.avg_rob_occupancy(), 0.0);
    }

    #[test]
    fn coverage_records_by_category() {
        let mut c = CoverageCounts::default();
        c.record(Disposition::DistPred { correct: true }, true);
        c.record(Disposition::DistPred { correct: true }, false);
        c.record(Disposition::ValuePred { correct: true }, false);
        c.record(Disposition::ZeroIdiomElim, false);
        c.record(Disposition::MoveElim, false);
        c.record(Disposition::ZeroPred { correct: true }, true);
        c.record(Disposition::None, false);
        assert_eq!(c.load_dist_pred, 1);
        assert_eq!(c.dist_pred, 1);
        assert_eq!(c.value_pred, 1);
        assert_eq!(c.zero_idiom_elim, 1);
        assert_eq!(c.move_elim, 1);
        assert_eq!(c.load_zero_pred, 1);
        assert_eq!(c.total_covered(), 6);
        assert_eq!(c.total_dist_pred(), 2);
        assert_eq!(c.total_value_pred(), 1);
    }

    #[test]
    fn accuracy_computation() {
        let stats =
            SimStats { correct_predictions: 995, incorrect_predictions: 5, ..SimStats::default() };
        assert!((stats.prediction_accuracy() - 0.995).abs() < 1e-12);
    }
}

//! Event-driven wakeup/select structures.
//!
//! The original core re-derived readiness from scratch every cycle by
//! walking the entire ROB and re-checking every source register, plus a
//! linear scan of the in-flight store list for memory disambiguation —
//! O(ROB × sources + stores) work per cycle. This module provides the two
//! structures that turn that into event-driven scheduling:
//!
//! * [`WakeupQueue`] — a calendar of future wakeups plus an age-ordered
//!   ready set. An instruction is inserted exactly once, when its last
//!   outstanding source register is assigned a completion cycle (wakeup on
//!   writeback); the per-cycle select then iterates only the ready set.
//! * [`StoreQueue`] — the in-flight stores, age-ordered and indexed by
//!   double-word address, so load disambiguation and store-to-load
//!   forwarding resolve the *youngest older* same-address store in
//!   O(log n) instead of scanning every in-flight store.
//!
//! Entries are generation-tagged [`InstSlot`] handles: squash removes ROB
//! entries but leaves scheduler entries behind, and replayed instructions
//! re-dispatch under the *same* sequence number with a new generation, so
//! every consumer resolves its handle against the live ROB (an O(1) arena
//! index — see [`crate::rob`]) and drops stale entries lazily. This keeps
//! squash cost proportional to the number of squashed instructions.

use crate::rob::InstSlot;
use std::cmp::Reverse;
// lint: exempt(determinism, only used with the deterministic SeqHasher via U64Map below)
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, deterministic hasher for the `u64`-keyed maps below (dword
/// buckets and store waiter lists, hit several times per simulated load).
/// The default SipHash is measurably slower and its DoS resistance buys
/// nothing against simulator-internal keys. Fibonacci multiply + rotate
/// mixes the low-entropy dword/sequence keys well enough for a `HashMap`.
#[derive(Debug, Default, Clone, Copy)]
// lint: exempt(dead-pub-api, hasher type named in pub BuildHasherDefault signatures; reached through them)
pub struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = (self.0 ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(26);
    }
}

// lint: exempt(determinism, deterministic SeqHasher seed and keyed access only; never iterated)
type U64Map<V> = HashMap<u64, V, BuildHasherDefault<SeqHasher>>;

/// Calendar + ready set for event-driven select.
#[derive(Debug, Default)]
pub struct WakeupQueue {
    /// Future wakeups: `(wake_at, slot)`, earliest first.
    calendar: BinaryHeap<Reverse<(u64, InstSlot)>>,
    /// Instructions ready to issue now, kept sorted ascending.
    /// [`InstSlot`] orders by `(seq, gen)`, so iteration is oldest first;
    /// staleness is resolved against the ROB by the caller. Occupancy is
    /// bounded by the scheduler size (tens of entries), where a sorted
    /// `Vec` beats a `BTreeSet` on every operation the select loop uses.
    ready: Vec<InstSlot>,
}

impl WakeupQueue {
    /// Creates an empty queue.
    pub fn new() -> WakeupQueue {
        WakeupQueue::default()
    }

    /// Schedules `slot` to enter the ready set at cycle `wake_at` (the
    /// cycle its last source becomes readable).
    pub fn schedule(&mut self, wake_at: u64, slot: InstSlot) {
        self.calendar.push(Reverse((wake_at, slot)));
    }

    /// Inserts an instruction into the ready set immediately (e.g. a load
    /// re-woken by the store it was waiting on).
    pub fn insert_ready(&mut self, slot: InstSlot) {
        if let Err(pos) = self.ready.binary_search(&slot) {
            self.ready.insert(pos, slot);
        }
    }

    /// Moves every calendar entry due at `clock` into the ready set.
    pub fn advance(&mut self, clock: u64) {
        while let Some(&Reverse((wake_at, slot))) = self.calendar.peek() {
            if wake_at > clock {
                break;
            }
            self.calendar.pop();
            self.insert_ready(slot);
        }
    }

    /// Snapshot of the ready set in age order, for tests and debugging —
    /// the select loop walks the set in place via
    /// [`WakeupQueue::ready_get`]/[`WakeupQueue::remove_ready_at`] instead
    /// of cloning it every cycle.
    pub fn ready_snapshot(&self) -> Vec<InstSlot> {
        self.ready.clone()
    }

    /// Number of entries currently in the ready set.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// The `idx`-th oldest ready entry.
    ///
    /// Together with [`WakeupQueue::remove_ready_at`] this lets the select
    /// loop walk the ready set in place — nothing inserts into the set
    /// during select (wakeups land in the calendar, store wakeups happen
    /// after select), so index-based iteration sees exactly the entries a
    /// snapshot would, without copying the set every cycle.
    pub fn ready_get(&self, idx: usize) -> InstSlot {
        self.ready[idx]
    }

    /// Removes the `idx`-th oldest ready entry (it issued, parked on a
    /// store, or turned out stale).
    pub fn remove_ready_at(&mut self, idx: usize) {
        self.ready.remove(idx);
    }

    /// Number of pending entries (calendar + ready), for tests.
    pub fn len(&self) -> usize {
        self.calendar.len() + self.ready.len()
    }

    /// Returns `true` when nothing is scheduled or ready.
    pub fn is_empty(&self) -> bool {
        self.calendar.is_empty() && self.ready.is_empty()
    }
}

/// One in-flight store, tracked for disambiguation and forwarding.
#[derive(Debug, Clone, Copy)]
// lint: exempt(dead-pub-api, element type of StoreQueue's pub entries; reached through it)
pub struct StoreRecord {
    /// Sequence number of the store.
    pub seq: u64,
    /// Address divided by 8 (double-word granularity, as in the trace
    /// generator).
    pub dword: u64,
    /// Whether the store has issued (its data is en route).
    pub issued: bool,
    /// Cycle its data is available for forwarding (valid once issued).
    pub complete_at: u64,
}

/// Age-ordered in-flight store queue indexed by double-word address.
#[derive(Debug, Default)]
pub struct StoreQueue {
    /// All in-flight stores in dispatch (= ascending sequence) order.
    /// Stores enter at the tail, commit from the head and squash off the
    /// tail, so the ring stays sorted and lookup is a binary search.
    records: VecDeque<StoreRecord>,
    /// Per-dword index: sequence numbers of in-flight stores to that
    /// double-word, in ascending (age) order.
    by_dword: U64Map<Vec<u64>>,
    /// Loads parked until a specific store issues, keyed by the store's
    /// sequence number.
    waiters: U64Map<Vec<InstSlot>>,
}

impl StoreQueue {
    /// Creates an empty store queue.
    pub fn new() -> StoreQueue {
        StoreQueue::default()
    }

    /// Number of in-flight stores.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no store is in flight.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Index of the record for `seq`, if the store is in flight.
    fn position(&self, seq: u64) -> Option<usize> {
        self.records.binary_search_by_key(&seq, |r| r.seq).ok()
    }

    /// Admits a newly dispatched store. Dispatch is in program order, so
    /// `seq` is strictly larger than every live entry.
    pub fn push(&mut self, seq: u64, dword: u64) {
        let bucket = self.by_dword.entry(dword).or_default();
        debug_assert!(bucket.last().is_none_or(|&s| s < seq), "stores dispatch in age order");
        debug_assert!(self.records.back().is_none_or(|r| r.seq < seq));
        bucket.push(seq);
        self.records.push_back(StoreRecord { seq, dword, issued: false, complete_at: u64::MAX });
    }

    /// The youngest in-flight store to `dword` that is older than
    /// `before_seq` — the store a load at `before_seq` would read from.
    /// Binary search over the per-dword index: O(log stores-to-dword).
    pub fn youngest_older(&self, dword: u64, before_seq: u64) -> Option<StoreRecord> {
        if self.records.is_empty() {
            return None;
        }
        let bucket = self.by_dword.get(&dword)?;
        let n_older = bucket.partition_point(|&s| s < before_seq);
        let seq = *bucket.get(n_older.checked_sub(1)?)?;
        self.records.get(self.position(seq)?).copied()
    }

    /// Parks a load until the store `store_seq` issues.
    pub fn add_waiter(&mut self, store_seq: u64, waiter: InstSlot) {
        self.waiters.entry(store_seq).or_default().push(waiter);
    }

    /// Marks a store issued with data available at `complete_at`, and
    /// returns the loads parked on it (to be re-inserted into the ready
    /// set).
    pub fn mark_issued(&mut self, seq: u64, complete_at: u64) -> Vec<InstSlot> {
        if let Some(pos) = self.position(seq) {
            let record = &mut self.records[pos];
            record.issued = true;
            record.complete_at = complete_at;
        }
        if self.waiters.is_empty() {
            return Vec::new();
        }
        self.waiters.remove(&seq).unwrap_or_default()
    }

    /// Removes a committed store. A store commits only after issuing, so
    /// its waiter list has already been drained. Commit is in program
    /// order, so this is almost always a pop from the head of the ring.
    pub fn remove(&mut self, seq: u64) {
        let Some(pos) = self.position(seq) else {
            return;
        };
        let record = self.records.remove(pos).expect("position is in range");
        if let Some(bucket) = self.by_dword.get_mut(&record.dword) {
            if let Ok(bucket_pos) = bucket.binary_search(&seq) {
                bucket.remove(bucket_pos);
            }
            if bucket.is_empty() {
                self.by_dword.remove(&record.dword);
            }
        }
        self.waiters.remove(&seq);
    }

    /// Removes every store with `seq >= from_seq` (squash). Cost is
    /// proportional to the number of squashed stores, not the queue size.
    pub fn squash_from(&mut self, from_seq: u64) {
        let keep = self.records.partition_point(|r| r.seq < from_seq);
        let StoreQueue { records, by_dword, waiters } = self;
        for record in records.drain(keep..) {
            if let Some(bucket) = by_dword.get_mut(&record.dword) {
                bucket.truncate(bucket.partition_point(|&s| s < from_seq));
                if bucket.is_empty() {
                    by_dword.remove(&record.dword);
                }
            }
            waiters.remove(&record.seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(seq: u64, gen: u64) -> InstSlot {
        InstSlot { seq, gen }
    }

    #[test]
    fn calendar_releases_entries_at_their_wake_cycle() {
        let mut q = WakeupQueue::new();
        q.schedule(5, slot(1, 0));
        q.schedule(3, slot(2, 0));
        q.schedule(7, slot(3, 0));
        q.advance(4);
        assert_eq!(q.ready_snapshot(), vec![slot(2, 0)]);
        q.advance(6);
        assert_eq!(q.ready_snapshot(), vec![slot(1, 0), slot(2, 0)]);
        q.remove_ready_at(1); // slot(2, 0)
        q.advance(7);
        assert_eq!(q.ready_snapshot(), vec![slot(1, 0), slot(3, 0)]);
    }

    #[test]
    fn ready_set_iterates_in_age_order() {
        let mut q = WakeupQueue::new();
        q.insert_ready(slot(9, 1));
        q.insert_ready(slot(2, 0));
        q.insert_ready(slot(5, 2));
        assert_eq!(q.ready_snapshot(), vec![slot(2, 0), slot(5, 2), slot(9, 1)]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn youngest_older_picks_the_last_matching_store_before_the_load() {
        let mut sq = StoreQueue::new();
        sq.push(10, 0x100);
        sq.push(20, 0x200);
        sq.push(30, 0x100);
        sq.push(40, 0x100);
        // A load at seq 35 reads dword 0x100: the youngest older store is
        // seq 30 — not the first match (10) and not the younger 40.
        assert_eq!(sq.youngest_older(0x100, 35).unwrap().seq, 30);
        assert_eq!(sq.youngest_older(0x100, 11).unwrap().seq, 10);
        assert!(sq.youngest_older(0x100, 10).is_none());
        assert!(sq.youngest_older(0x300, 100).is_none());
        assert_eq!(sq.youngest_older(0x200, 99).unwrap().seq, 20);
    }

    #[test]
    fn mark_issued_returns_parked_waiters() {
        let mut sq = StoreQueue::new();
        sq.push(10, 0x100);
        sq.add_waiter(10, slot(15, 3));
        sq.add_waiter(10, slot(16, 3));
        let woken = sq.mark_issued(10, 42);
        assert_eq!(woken.len(), 2);
        let record = sq.youngest_older(0x100, 99).unwrap();
        assert!(record.issued);
        assert_eq!(record.complete_at, 42);
        assert!(sq.mark_issued(10, 42).is_empty(), "waiters drain once");
    }

    #[test]
    fn remove_and_squash_keep_the_dword_index_consistent() {
        let mut sq = StoreQueue::new();
        sq.push(1, 0xA);
        sq.push(2, 0xA);
        sq.push(3, 0xB);
        sq.push(4, 0xA);
        sq.remove(1);
        assert_eq!(sq.youngest_older(0xA, 100).unwrap().seq, 4);
        sq.squash_from(3);
        assert_eq!(sq.len(), 1);
        assert_eq!(sq.youngest_older(0xA, 100).unwrap().seq, 2);
        assert!(sq.youngest_older(0xB, 100).is_none());
        // Replay re-dispatches the squashed stores in order.
        sq.push(3, 0xB);
        sq.push(4, 0xA);
        assert_eq!(sq.youngest_older(0xA, 100).unwrap().seq, 4);
    }

    #[test]
    fn seq_hasher_is_deterministic_and_spreads_small_keys() {
        let hash = |v: u64| {
            let mut h = SeqHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        // Consecutive dwords (the common store-address pattern) must not
        // collapse onto each other.
        let hashes: std::collections::BTreeSet<u64> = (0..1024).map(hash).collect();
        assert_eq!(hashes.len(), 1024);
    }
}

//! Event-driven wakeup/select structures.
//!
//! The original core re-derived readiness from scratch every cycle by
//! walking the entire ROB and re-checking every source register, plus a
//! linear scan of the in-flight store list for memory disambiguation —
//! O(ROB × sources + stores) work per cycle. This module provides the two
//! structures that turn that into event-driven scheduling:
//!
//! * [`WakeupQueue`] — a calendar of future wakeups plus an age-ordered
//!   ready set. An instruction is inserted exactly once, when its last
//!   outstanding source register is assigned a completion cycle (wakeup on
//!   writeback); the per-cycle select then iterates only the ready set.
//! * [`StoreQueue`] — the in-flight stores, age-ordered and indexed by
//!   double-word address, so load disambiguation and store-to-load
//!   forwarding resolve the *youngest older* same-address store in
//!   O(log n) instead of scanning every in-flight store.
//!
//! Entries are tagged with the dispatch generation of the instruction they
//! refer to (see [`Waiter`](crate::regfile::Waiter)): squash removes ROB
//! entries but leaves scheduler entries behind, and replayed instructions
//! re-dispatch under the *same* sequence number with a new generation, so
//! every consumer validates `(seq, gen)` against the live ROB entry and
//! drops stale entries lazily. This keeps squash cost proportional to the
//! number of squashed instructions.

use crate::regfile::Waiter;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

/// Calendar + ready set for event-driven select.
#[derive(Debug, Default)]
pub struct WakeupQueue {
    /// Future wakeups: `(wake_at, seq, gen)`, earliest first.
    calendar: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// Instructions ready to issue now, iterated oldest first. Entries are
    /// `(seq, gen)`; staleness is resolved against the ROB by the caller.
    ready: BTreeSet<(u64, u64)>,
}

impl WakeupQueue {
    /// Creates an empty queue.
    pub fn new() -> WakeupQueue {
        WakeupQueue::default()
    }

    /// Schedules instruction `(seq, gen)` to enter the ready set at cycle
    /// `wake_at` (the cycle its last source becomes readable).
    pub fn schedule(&mut self, wake_at: u64, seq: u64, gen: u64) {
        self.calendar.push(Reverse((wake_at, seq, gen)));
    }

    /// Inserts an instruction into the ready set immediately (e.g. a load
    /// re-woken by the store it was waiting on).
    pub fn insert_ready(&mut self, seq: u64, gen: u64) {
        self.ready.insert((seq, gen));
    }

    /// Moves every calendar entry due at `clock` into the ready set.
    pub fn advance(&mut self, clock: u64) {
        while let Some(&Reverse((wake_at, seq, gen))) = self.calendar.peek() {
            if wake_at > clock {
                break;
            }
            self.calendar.pop();
            self.ready.insert((seq, gen));
        }
    }

    /// Snapshot of the ready set in age order, for the select loop.
    pub fn ready_snapshot(&self) -> Vec<(u64, u64)> {
        self.ready.iter().copied().collect()
    }

    /// Copies the ready set in age order into `buf` (cleared first). The
    /// allocation-free variant of [`WakeupQueue::ready_snapshot`] for the
    /// per-cycle select loop.
    pub fn ready_into(&self, buf: &mut Vec<(u64, u64)>) {
        buf.clear();
        buf.extend(self.ready.iter().copied());
    }

    /// Removes an entry from the ready set (it issued, parked on a store,
    /// or turned out stale).
    pub fn remove_ready(&mut self, seq: u64, gen: u64) {
        self.ready.remove(&(seq, gen));
    }

    /// Number of pending entries (calendar + ready), for tests.
    pub fn len(&self) -> usize {
        self.calendar.len() + self.ready.len()
    }

    /// Returns `true` when nothing is scheduled or ready.
    pub fn is_empty(&self) -> bool {
        self.calendar.is_empty() && self.ready.is_empty()
    }
}

/// One in-flight store, tracked for disambiguation and forwarding.
#[derive(Debug, Clone, Copy)]
pub struct StoreRecord {
    /// Sequence number of the store.
    pub seq: u64,
    /// Address divided by 8 (double-word granularity, as in the trace
    /// generator).
    pub dword: u64,
    /// Whether the store has issued (its data is en route).
    pub issued: bool,
    /// Cycle its data is available for forwarding (valid once issued).
    pub complete_at: u64,
}

/// Age-ordered in-flight store queue indexed by double-word address.
#[derive(Debug, Default)]
pub struct StoreQueue {
    /// All in-flight stores, keyed (and therefore ordered) by sequence
    /// number.
    by_seq: BTreeMap<u64, StoreRecord>,
    /// Per-dword index: sequence numbers of in-flight stores to that
    /// double-word, in ascending (age) order.
    by_dword: HashMap<u64, Vec<u64>>,
    /// Loads parked until a specific store issues, keyed by the store's
    /// sequence number.
    waiters: HashMap<u64, Vec<Waiter>>,
}

impl StoreQueue {
    /// Creates an empty store queue.
    pub fn new() -> StoreQueue {
        StoreQueue::default()
    }

    /// Number of in-flight stores.
    pub fn len(&self) -> usize {
        self.by_seq.len()
    }

    /// Returns `true` when no store is in flight.
    pub fn is_empty(&self) -> bool {
        self.by_seq.is_empty()
    }

    /// Admits a newly dispatched store. Dispatch is in program order, so
    /// `seq` is strictly larger than every live entry.
    pub fn push(&mut self, seq: u64, dword: u64) {
        let bucket = self.by_dword.entry(dword).or_default();
        debug_assert!(bucket.last().is_none_or(|&s| s < seq), "stores dispatch in age order");
        bucket.push(seq);
        self.by_seq.insert(seq, StoreRecord { seq, dword, issued: false, complete_at: u64::MAX });
    }

    /// The youngest in-flight store to `dword` that is older than
    /// `before_seq` — the store a load at `before_seq` would read from.
    /// Binary search over the per-dword index: O(log stores-to-dword).
    pub fn youngest_older(&self, dword: u64, before_seq: u64) -> Option<StoreRecord> {
        let bucket = self.by_dword.get(&dword)?;
        let n_older = bucket.partition_point(|&s| s < before_seq);
        let seq = *bucket.get(n_older.checked_sub(1)?)?;
        self.by_seq.get(&seq).copied()
    }

    /// Parks a load until the store `store_seq` issues.
    pub fn add_waiter(&mut self, store_seq: u64, waiter: Waiter) {
        self.waiters.entry(store_seq).or_default().push(waiter);
    }

    /// Marks a store issued with data available at `complete_at`, and
    /// returns the loads parked on it (to be re-inserted into the ready
    /// set).
    pub fn mark_issued(&mut self, seq: u64, complete_at: u64) -> Vec<Waiter> {
        if let Some(record) = self.by_seq.get_mut(&seq) {
            record.issued = true;
            record.complete_at = complete_at;
        }
        self.waiters.remove(&seq).unwrap_or_default()
    }

    /// Removes a committed store. A store commits only after issuing, so
    /// its waiter list has already been drained.
    pub fn remove(&mut self, seq: u64) {
        let Some(record) = self.by_seq.remove(&seq) else {
            return;
        };
        if let Some(bucket) = self.by_dword.get_mut(&record.dword) {
            if let Ok(pos) = bucket.binary_search(&seq) {
                bucket.remove(pos);
            }
            if bucket.is_empty() {
                self.by_dword.remove(&record.dword);
            }
        }
        self.waiters.remove(&seq);
    }

    /// Removes every store with `seq >= from_seq` (squash). Cost is
    /// proportional to the number of squashed stores, not the queue size.
    pub fn squash_from(&mut self, from_seq: u64) {
        let squashed = self.by_seq.split_off(&from_seq);
        for (seq, record) in squashed {
            if let Some(bucket) = self.by_dword.get_mut(&record.dword) {
                bucket.truncate(bucket.partition_point(|&s| s < from_seq));
                if bucket.is_empty() {
                    self.by_dword.remove(&record.dword);
                }
            }
            self.waiters.remove(&seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_releases_entries_at_their_wake_cycle() {
        let mut q = WakeupQueue::new();
        q.schedule(5, 1, 0);
        q.schedule(3, 2, 0);
        q.schedule(7, 3, 0);
        q.advance(4);
        assert_eq!(q.ready_snapshot(), vec![(2, 0)]);
        q.advance(6);
        assert_eq!(q.ready_snapshot(), vec![(1, 0), (2, 0)]);
        q.remove_ready(2, 0);
        q.advance(7);
        assert_eq!(q.ready_snapshot(), vec![(1, 0), (3, 0)]);
    }

    #[test]
    fn ready_set_iterates_in_age_order() {
        let mut q = WakeupQueue::new();
        q.insert_ready(9, 1);
        q.insert_ready(2, 0);
        q.insert_ready(5, 2);
        assert_eq!(q.ready_snapshot(), vec![(2, 0), (5, 2), (9, 1)]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn youngest_older_picks_the_last_matching_store_before_the_load() {
        let mut sq = StoreQueue::new();
        sq.push(10, 0x100);
        sq.push(20, 0x200);
        sq.push(30, 0x100);
        sq.push(40, 0x100);
        // A load at seq 35 reads dword 0x100: the youngest older store is
        // seq 30 — not the first match (10) and not the younger 40.
        assert_eq!(sq.youngest_older(0x100, 35).unwrap().seq, 30);
        assert_eq!(sq.youngest_older(0x100, 11).unwrap().seq, 10);
        assert!(sq.youngest_older(0x100, 10).is_none());
        assert!(sq.youngest_older(0x300, 100).is_none());
        assert_eq!(sq.youngest_older(0x200, 99).unwrap().seq, 20);
    }

    #[test]
    fn mark_issued_returns_parked_waiters() {
        let mut sq = StoreQueue::new();
        sq.push(10, 0x100);
        sq.add_waiter(10, Waiter { seq: 15, gen: 3 });
        sq.add_waiter(10, Waiter { seq: 16, gen: 3 });
        let woken = sq.mark_issued(10, 42);
        assert_eq!(woken.len(), 2);
        let record = sq.youngest_older(0x100, 99).unwrap();
        assert!(record.issued);
        assert_eq!(record.complete_at, 42);
        assert!(sq.mark_issued(10, 42).is_empty(), "waiters drain once");
    }

    #[test]
    fn remove_and_squash_keep_the_dword_index_consistent() {
        let mut sq = StoreQueue::new();
        sq.push(1, 0xA);
        sq.push(2, 0xA);
        sq.push(3, 0xB);
        sq.push(4, 0xA);
        sq.remove(1);
        assert_eq!(sq.youngest_older(0xA, 100).unwrap().seq, 4);
        sq.squash_from(3);
        assert_eq!(sq.len(), 1);
        assert_eq!(sq.youngest_older(0xA, 100).unwrap().seq, 2);
        assert!(sq.youngest_older(0xB, 100).is_none());
        // Replay re-dispatches the squashed stores in order.
        sq.push(3, 0xB);
        sq.push(4, 0xA);
        assert_eq!(sq.youngest_older(0xA, 100).unwrap().seq, 4);
    }
}

//! Reorder buffer and in-flight instruction records.
//!
//! The ROB tracks every renamed, not-yet-committed instruction in program
//! order. RSEP indexes the ROB with the predicted instruction distance to
//! retrieve the physical register of the provider instruction
//! (Section IV-E1), which is why the [`Rob`] exposes sequence-number lookup.

use crate::engine::{Disposition, ValidationKind};
use rsep_isa::{DynInst, PhysReg};
use std::collections::VecDeque;

/// One renamed, in-flight instruction.
#[derive(Debug, Clone)]
pub struct InflightInst {
    /// The dynamic instruction.
    pub inst: DynInst,
    /// Physical register holding (or designated to hold) the result.
    pub dest_preg: Option<PhysReg>,
    /// Previous mapping of the destination architectural register, to be
    /// released at commit.
    pub prev_preg: Option<PhysReg>,
    /// Whether `dest_preg` was freshly allocated for this instruction (as
    /// opposed to shared, hardwired zero, or a move-eliminated source).
    pub allocated_new_preg: bool,
    /// Renamed source registers (plus the provider register for shared
    /// instructions, which adds a dependency per Section IV-F1).
    pub src_pregs: Vec<PhysReg>,
    /// Mechanism handling this instruction.
    pub disposition: Disposition,
    /// True for instructions that never execute (move elimination,
    /// zero-idiom elimination, nops).
    pub eliminated: bool,
    /// Whether the instruction currently occupies a scheduler entry.
    pub in_iq: bool,
    /// Whether it has been issued.
    pub issued: bool,
    /// Whether execution has finished (valid once `issued`).
    pub complete_at: u64,
    /// Cycle at which it was renamed/dispatched.
    pub renamed_at: u64,
    /// True if this is a branch the front end mispredicted.
    pub branch_mispredicted: bool,
    /// Pending second (validation) issue for RSEP, if any.
    pub needs_validation_issue: Option<ValidationKind>,
    /// Whether the instruction occupies a load-queue entry.
    pub uses_lq: bool,
    /// Whether the instruction occupies a store-queue entry.
    pub uses_sq: bool,
    /// Dispatch generation: distinguishes this dispatch of the sequence
    /// number from earlier, squashed dispatches of the same instruction, so
    /// stale scheduler entries can be detected and dropped lazily.
    pub sched_gen: u64,
    /// Source registers whose availability cycle is not yet known; the
    /// instruction is inserted into the ready set when this reaches zero
    /// (event-driven wakeup).
    pub pending_srcs: u32,
    /// Earliest cycle the instruction can issue: the maximum of the known
    /// source-availability cycles and the cycle after dispatch.
    pub wake_at: u64,
}

impl InflightInst {
    /// Returns `true` once the instruction has produced its result (or
    /// needs no execution) by `clock`.
    pub fn is_completed(&self, clock: u64) -> bool {
        if self.eliminated {
            return true;
        }
        self.issued && self.complete_at <= clock
    }

    /// Sequence number of the instruction.
    pub fn seq(&self) -> u64 {
        self.inst.seq
    }
}

/// The reorder buffer.
#[derive(Debug)]
pub struct Rob {
    entries: VecDeque<InflightInst>,
    capacity: usize,
}

impl Rob {
    /// Creates a ROB with the given capacity.
    pub fn new(capacity: usize) -> Rob {
        assert!(capacity > 0);
        Rob { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no instruction is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` when no further instruction can be dispatched.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends a newly renamed instruction.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or sequence numbers go backwards
    /// (dispatch must be in program order).
    pub fn push(&mut self, entry: InflightInst) {
        assert!(!self.is_full(), "ROB overflow");
        if let Some(last) = self.entries.back() {
            assert!(entry.seq() > last.seq(), "out-of-order dispatch into the ROB");
        }
        self.entries.push_back(entry);
    }

    /// The oldest in-flight instruction.
    pub fn head(&self) -> Option<&InflightInst> {
        self.entries.front()
    }

    /// Removes and returns the oldest instruction (it has committed).
    pub fn pop_head(&mut self) -> Option<InflightInst> {
        self.entries.pop_front()
    }

    /// Looks up an in-flight instruction by sequence number.
    pub fn find_by_seq(&self, seq: u64) -> Option<&InflightInst> {
        let head_seq = self.entries.front()?.seq();
        if seq < head_seq {
            return None;
        }
        let offset = (seq - head_seq) as usize;
        // Sequence numbers are dense in the ROB only if every dynamic
        // instruction is dispatched; they are, so direct indexing is valid,
        // but fall back to a search in case of gaps (e.g. after replays).
        match self.entries.get(offset) {
            Some(e) if e.seq() == seq => Some(e),
            _ => self.entries.iter().find(|e| e.seq() == seq),
        }
    }

    /// Mutable lookup by sequence number.
    pub fn find_by_seq_mut(&mut self, seq: u64) -> Option<&mut InflightInst> {
        let head_seq = self.entries.front()?.seq();
        if seq < head_seq {
            return None;
        }
        let offset = (seq - head_seq) as usize;
        let direct_hit = matches!(self.entries.get(offset), Some(e) if e.seq() == seq);
        if direct_hit {
            return self.entries.get_mut(offset);
        }
        self.entries.iter_mut().find(|e| e.seq() == seq)
    }

    /// Iterates over in-flight instructions from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &InflightInst> {
        self.entries.iter()
    }

    /// Iterates mutably from oldest to youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut InflightInst> {
        self.entries.iter_mut()
    }

    /// Removes every instruction with `seq >= from_seq` (a squash) and
    /// returns them from oldest to youngest.
    pub fn squash_from(&mut self, from_seq: u64) -> Vec<InflightInst> {
        let keep = self.entries.iter().take_while(|e| e.seq() < from_seq).count();
        self.entries.split_off(keep).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsep_isa::{ArchReg, OpClass};

    fn entry(seq: u64) -> InflightInst {
        InflightInst {
            inst: DynInst::simple(seq, 0x400000 + seq * 4, OpClass::IntAlu, ArchReg::int(1), seq),
            dest_preg: None,
            prev_preg: None,
            allocated_new_preg: false,
            src_pregs: Vec::new(),
            disposition: Disposition::None,
            eliminated: false,
            in_iq: true,
            issued: false,
            complete_at: 0,
            renamed_at: 0,
            branch_mispredicted: false,
            needs_validation_issue: None,
            uses_lq: false,
            uses_sq: false,
            sched_gen: 0,
            pending_srcs: 0,
            wake_at: 0,
        }
    }

    #[test]
    fn push_pop_in_order() {
        let mut rob = Rob::new(4);
        assert!(rob.is_empty());
        rob.push(entry(0));
        rob.push(entry(1));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.head().unwrap().seq(), 0);
        assert_eq!(rob.pop_head().unwrap().seq(), 0);
        assert_eq!(rob.pop_head().unwrap().seq(), 1);
        assert!(rob.pop_head().is_none());
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "out-of-order dispatch")]
    fn out_of_order_dispatch_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(5));
        rob.push(entry(3));
    }

    #[test]
    fn find_by_seq_with_dense_numbers() {
        let mut rob = Rob::new(8);
        for s in 10..16 {
            rob.push(entry(s));
        }
        assert_eq!(rob.find_by_seq(12).unwrap().seq(), 12);
        assert!(rob.find_by_seq(9).is_none());
        assert!(rob.find_by_seq(16).is_none());
        rob.find_by_seq_mut(13).unwrap().issued = true;
        assert!(rob.find_by_seq(13).unwrap().issued);
    }

    #[test]
    fn squash_removes_younger_entries() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        let squashed = rob.squash_from(3);
        assert_eq!(squashed.len(), 3);
        assert_eq!(squashed[0].seq(), 3);
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.iter().last().unwrap().seq(), 2);
    }

    #[test]
    fn completion_rules() {
        let mut e = entry(0);
        assert!(!e.is_completed(100));
        e.issued = true;
        e.complete_at = 50;
        assert!(!e.is_completed(49));
        assert!(e.is_completed(50));
        let mut elim = entry(1);
        elim.eliminated = true;
        assert!(elim.is_completed(0));
    }
}

//! Reorder buffer and in-flight instruction records.
//!
//! The ROB tracks every renamed, not-yet-committed instruction in program
//! order. RSEP indexes the ROB with the predicted instruction distance to
//! retrieve the physical register of the provider instruction
//! (Section IV-E1), which is why the [`Rob`] exposes sequence-number lookup.
//!
//! # Storage
//!
//! The in-flight store is a **slot arena**: a fixed array of
//! `capacity.next_power_of_two()` slots. Sequence numbers in the ROB are
//! dense (dispatch is in program order and replay preserves numbering —
//! asserted on every push), so the slot of `seq` is simply `seq & mask`:
//! every lookup, whether by sequence number or by [`InstSlot`] handle, is a
//! single array index with no search, and squashing truncates the ring in
//! place without allocating. (The original `VecDeque` backend was retained
//! for one PR as `RobKind::Deque` and retired after the PR 4 equivalence
//! proofs; `tests/proptest_rob.rs` still drives the arena against an
//! in-test reference model.)
//!
//! Scheduler-side structures (wakeup lists, ready set, store-queue parking
//! — see [`crate::sched`]) do not store bare sequence numbers: they hold
//! copyable [`InstSlot`] handles, which [`Rob::get`]/[`Rob::get_mut`]
//! resolve in O(1) *and* validate in the same step (a stale handle left
//! behind by a squash fails its generation check and resolves to `None`).

use crate::engine::{Disposition, ValidationKind};
use rsep_isa::{DynInst, PhysReg, RegClass, MAX_SOURCES};

/// Copyable, generation-tagged handle to an in-flight instruction.
///
/// `seq` is the instruction's sequence number — in-flight sequence numbers
/// are dense, so it doubles as the arena index (`seq & mask`). `gen` is the
/// dispatch generation the instruction was renamed under: squash + replay
/// re-dispatches the same sequence number with a fresh generation, so a
/// handle whose generation no longer matches the live entry is stale and
/// resolves to `None`. This is what keeps squash O(squashed): stale handles
/// parked in scheduler structures are dropped lazily when next touched
/// instead of being scrubbed eagerly.
///
/// Ordering is by `(seq, gen)`, i.e. age order — the scheduler's ready set
/// relies on this to select oldest-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstSlot {
    /// Sequence number of the instruction the handle refers to.
    pub seq: u64,
    /// Dispatch generation the handle was created under.
    pub gen: u64,
}

/// Maximum renamed sources an in-flight instruction can carry: the ISA's
/// source operands plus the provider register a shared (RSEP-predicted)
/// instruction depends on (Section IV-F1).
// lint: exempt(dead-pub-api, documented sizing bound of the rename dependence arrays)
pub const MAX_SRC_REGS: usize = MAX_SOURCES + 1;

/// Inline list of renamed source registers.
///
/// Every dispatched instruction used to carry its sources in a `Vec`,
/// costing one heap allocation per dispatch on the hottest path of the
/// simulator. The bound is small and static ([`MAX_SRC_REGS`]), so the
/// list is stored inline in the ROB entry instead.
#[derive(Clone, Copy)]
pub struct SrcRegs {
    regs: [PhysReg; MAX_SRC_REGS],
    len: u8,
}

impl SrcRegs {
    /// Creates an empty source list.
    pub fn new() -> SrcRegs {
        SrcRegs { regs: [PhysReg::new(RegClass::Int, 0); MAX_SRC_REGS], len: 0 }
    }

    /// Appends a source register.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SRC_REGS`] sources are pushed.
    pub fn push(&mut self, reg: PhysReg) {
        assert!((self.len as usize) < MAX_SRC_REGS, "too many renamed sources");
        self.regs[self.len as usize] = reg;
        self.len += 1;
    }

    /// The sources as a slice.
    pub fn as_slice(&self) -> &[PhysReg] {
        &self.regs[..self.len as usize]
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` when the instruction has no renamed sources.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the sources.
    pub fn iter(&self) -> std::slice::Iter<'_, PhysReg> {
        self.as_slice().iter()
    }
}

impl Default for SrcRegs {
    fn default() -> SrcRegs {
        SrcRegs::new()
    }
}

impl std::ops::Deref for SrcRegs {
    type Target = [PhysReg];

    fn deref(&self) -> &[PhysReg] {
        self.as_slice()
    }
}

impl std::fmt::Debug for SrcRegs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for SrcRegs {
    fn eq(&self, other: &SrcRegs) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SrcRegs {}

impl<'a> IntoIterator for &'a SrcRegs {
    type Item = &'a PhysReg;
    type IntoIter = std::slice::Iter<'a, PhysReg>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<PhysReg> for SrcRegs {
    fn from_iter<I: IntoIterator<Item = PhysReg>>(iter: I) -> SrcRegs {
        let mut regs = SrcRegs::new();
        for reg in iter {
            regs.push(reg);
        }
        regs
    }
}

/// One renamed, in-flight instruction.
#[derive(Debug, Clone)]
pub struct InflightInst {
    /// The dynamic instruction.
    pub inst: DynInst,
    /// Physical register holding (or designated to hold) the result.
    pub dest_preg: Option<PhysReg>,
    /// Previous mapping of the destination architectural register, to be
    /// released at commit.
    pub prev_preg: Option<PhysReg>,
    /// Whether `dest_preg` was freshly allocated for this instruction (as
    /// opposed to shared, hardwired zero, or a move-eliminated source).
    pub allocated_new_preg: bool,
    /// Renamed source registers (plus the provider register for shared
    /// instructions, which adds a dependency per Section IV-F1).
    pub src_pregs: SrcRegs,
    /// Mechanism handling this instruction.
    pub disposition: Disposition,
    /// True for instructions that never execute (move elimination,
    /// zero-idiom elimination, nops).
    pub eliminated: bool,
    /// Whether the instruction currently occupies a scheduler entry.
    pub in_iq: bool,
    /// Whether it has been issued.
    pub issued: bool,
    /// Whether execution has finished (valid once `issued`).
    pub complete_at: u64,
    /// Cycle at which it was renamed/dispatched.
    pub renamed_at: u64,
    /// True if this is a branch the front end mispredicted.
    pub branch_mispredicted: bool,
    /// Pending second (validation) issue for RSEP, if any.
    pub needs_validation_issue: Option<ValidationKind>,
    /// Whether the instruction occupies a load-queue entry.
    pub uses_lq: bool,
    /// Whether the instruction occupies a store-queue entry.
    pub uses_sq: bool,
    /// Dispatch generation: distinguishes this dispatch of the sequence
    /// number from earlier, squashed dispatches of the same instruction, so
    /// stale scheduler entries can be detected and dropped lazily.
    pub sched_gen: u64,
    /// Source registers whose availability cycle is not yet known; the
    /// instruction is inserted into the ready set when this reaches zero
    /// (event-driven wakeup).
    pub pending_srcs: u32,
    /// Earliest cycle the instruction can issue: the maximum of the known
    /// source-availability cycles and the cycle after dispatch.
    pub wake_at: u64,
}

impl InflightInst {
    /// Returns `true` once the instruction has produced its result (or
    /// needs no execution) by `clock`.
    pub fn is_completed(&self, clock: u64) -> bool {
        if self.eliminated {
            return true;
        }
        self.issued && self.complete_at <= clock
    }

    /// Sequence number of the instruction.
    pub fn seq(&self) -> u64 {
        self.inst.seq
    }

    /// The generation-tagged handle of this entry.
    pub fn slot(&self) -> InstSlot {
        InstSlot { seq: self.inst.seq, gen: self.sched_gen }
    }

    /// The destination register whose dependents wake when this
    /// instruction's completion cycle becomes known: only freshly
    /// allocated destinations qualify (shared/zero/move-eliminated
    /// mappings have other owners), and value-predicted destinations were
    /// already marked ready at rename so dependents could consume the
    /// prediction immediately.
    pub fn wakeup_dest(&self) -> Option<PhysReg> {
        if self.allocated_new_preg && !matches!(self.disposition, Disposition::ValuePred { .. }) {
            self.dest_preg
        } else {
            None
        }
    }
}

/// The reorder buffer: a flat slot arena. `slots.len()` is
/// `capacity.next_power_of_two()`, so `seq & mask` maps every live (dense)
/// sequence number to a distinct slot.
#[derive(Debug)]
pub struct Rob {
    slots: Box<[Option<InflightInst>]>,
    mask: u64,
    /// Sequence number of the oldest in-flight instruction (meaningful only
    /// while `len > 0`).
    head_seq: u64,
    len: usize,
    capacity: usize,
}

impl Rob {
    /// Creates a ROB with the given capacity.
    pub fn new(capacity: usize) -> Rob {
        assert!(capacity > 0);
        let slots = capacity.next_power_of_two();
        Rob {
            slots: (0..slots).map(|_| None).collect(),
            mask: slots as u64 - 1,
            head_seq: 0,
            len: 0,
            capacity,
        }
    }

    fn idx(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    fn contains_seq(&self, seq: u64) -> bool {
        self.len > 0 && seq >= self.head_seq && seq - self.head_seq < self.len as u64
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no instruction is in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` when no further instruction can be dispatched.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Appends a newly renamed instruction and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or the sequence number is not exactly one
    /// past the youngest entry — dispatch is in program order and in-flight
    /// sequence numbers are dense (replay preserves numbering), which is
    /// what makes slot addressing and offset lookup exact.
    pub fn push(&mut self, entry: InflightInst) -> InstSlot {
        assert!(!self.is_full(), "ROB overflow");
        let slot = entry.slot();
        if self.len > 0 {
            assert!(
                entry.seq() == self.head_seq + self.len as u64,
                "out-of-order dispatch into the ROB (in-flight sequence \
                 numbers must be dense)"
            );
        } else {
            self.head_seq = entry.seq();
        }
        let idx = self.idx(entry.seq());
        debug_assert!(self.slots[idx].is_none(), "arena slot collision");
        self.slots[idx] = Some(entry);
        self.len += 1;
        slot
    }

    /// The oldest in-flight instruction.
    pub fn head(&self) -> Option<&InflightInst> {
        if self.len == 0 {
            return None;
        }
        self.slots[self.idx(self.head_seq)].as_ref()
    }

    /// Removes and returns the oldest instruction (it has committed).
    pub fn pop_head(&mut self) -> Option<InflightInst> {
        if self.len == 0 {
            return None;
        }
        let idx = self.idx(self.head_seq);
        let entry = self.slots[idx].take();
        debug_assert!(entry.is_some(), "dense arena head slot must be occupied");
        self.head_seq += 1;
        self.len -= 1;
        entry
    }

    /// Resolves a generation-tagged handle: `None` if the entry left the
    /// window (committed or squashed) or was re-dispatched under a newer
    /// generation. O(1).
    pub fn get(&self, slot: InstSlot) -> Option<&InflightInst> {
        let entry = self.find_by_seq(slot.seq)?;
        (entry.sched_gen == slot.gen).then_some(entry)
    }

    /// Mutable handle resolution (see [`Rob::get`]).
    pub fn get_mut(&mut self, slot: InstSlot) -> Option<&mut InflightInst> {
        let entry = self.find_by_seq_mut(slot.seq)?;
        (entry.sched_gen == slot.gen).then_some(entry)
    }

    /// Looks up an in-flight instruction by sequence number.
    ///
    /// In-flight sequence numbers are dense, so this is direct indexing —
    /// the invariant is asserted at dispatch.
    pub fn find_by_seq(&self, seq: u64) -> Option<&InflightInst> {
        if !self.contains_seq(seq) {
            return None;
        }
        let entry = self.slots[self.idx(seq)].as_ref();
        debug_assert!(entry.is_some_and(|e| e.seq() == seq), "dense-seq invariant broken");
        entry
    }

    /// Mutable lookup by sequence number.
    pub fn find_by_seq_mut(&mut self, seq: u64) -> Option<&mut InflightInst> {
        if !self.contains_seq(seq) {
            return None;
        }
        let idx = self.idx(seq);
        let entry = self.slots[idx].as_mut();
        debug_assert!(entry.as_ref().is_some_and(|e| e.seq() == seq), "dense-seq invariant broken");
        entry
    }

    /// Iterates over in-flight instructions from oldest to youngest.
    pub fn iter(&self) -> RobIter<'_> {
        RobIter { rob: self, next: self.head_seq, remaining: self.len }
    }

    /// Removes every instruction with `seq >= from_seq` (a squash), handing
    /// each to `f` from oldest to youngest. No intermediate collection is
    /// allocated — the arena truncates its ring in place.
    pub fn squash_from_each(&mut self, from_seq: u64, mut f: impl FnMut(InflightInst)) {
        if self.len == 0 {
            return;
        }
        let end = self.head_seq + self.len as u64;
        // Clamp both ways: a `from_seq` below the head squashes the whole
        // window, one beyond the tail is a no-op (the length update below
        // must not run past `end` either way).
        let start = from_seq.clamp(self.head_seq, end);
        for seq in start..end {
            let idx = (seq & self.mask) as usize;
            let entry = self.slots[idx].take().expect("dense arena slot must be occupied");
            debug_assert_eq!(entry.seq(), seq, "dense-seq invariant broken");
            f(entry);
        }
        self.len = (start - self.head_seq) as usize;
    }

    /// Removes every instruction with `seq >= from_seq` (a squash) and
    /// returns them from oldest to youngest. Convenience wrapper around
    /// [`Rob::squash_from_each`] for tests and reference code.
    pub fn squash_from(&mut self, from_seq: u64) -> Vec<InflightInst> {
        let mut squashed = Vec::new();
        self.squash_from_each(from_seq, |entry| squashed.push(entry));
        squashed
    }
}

/// Oldest-to-youngest iterator over the in-flight instructions (see
/// [`Rob::iter`]).
#[derive(Debug)]
// lint: exempt(dead-pub-api, iterator type returned by Rob::iter; reached through it)
pub struct RobIter<'a> {
    rob: &'a Rob,
    next: u64,
    remaining: usize,
}

impl<'a> Iterator for RobIter<'a> {
    type Item = &'a InflightInst;

    fn next(&mut self) -> Option<&'a InflightInst> {
        if self.remaining == 0 {
            return None;
        }
        let entry = self.rob.slots[self.rob.idx(self.next)].as_ref();
        debug_assert!(entry.is_some(), "dense arena slot must be occupied");
        self.next += 1;
        self.remaining -= 1;
        entry
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RobIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rsep_isa::{ArchReg, OpClass};

    fn entry(seq: u64) -> InflightInst {
        InflightInst {
            inst: DynInst::simple(seq, 0x400000 + seq * 4, OpClass::IntAlu, ArchReg::int(1), seq),
            dest_preg: None,
            prev_preg: None,
            allocated_new_preg: false,
            src_pregs: SrcRegs::new(),
            disposition: Disposition::None,
            eliminated: false,
            in_iq: true,
            issued: false,
            complete_at: 0,
            renamed_at: 0,
            branch_mispredicted: false,
            needs_validation_issue: None,
            uses_lq: false,
            uses_sq: false,
            sched_gen: 0,
            pending_srcs: 0,
            wake_at: 0,
        }
    }

    #[test]
    fn push_pop_in_order() {
        let mut rob = Rob::new(4);
        assert!(rob.is_empty());
        rob.push(entry(0));
        rob.push(entry(1));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.head().unwrap().seq(), 0);
        assert_eq!(rob.pop_head().unwrap().seq(), 0);
        assert_eq!(rob.pop_head().unwrap().seq(), 1);
        assert!(rob.pop_head().is_none());
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "out-of-order dispatch")]
    fn out_of_order_dispatch_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(5));
        rob.push(entry(3));
    }

    #[test]
    #[should_panic(expected = "sequence numbers must be dense")]
    fn non_dense_dispatch_panics() {
        // Regression pin for the dense-seq invariant that replaced the
        // linear-scan fallback: a gap in dispatched sequence numbers must
        // trip the assert, not silently corrupt slot addressing.
        let mut rob = Rob::new(8);
        rob.push(entry(0));
        rob.push(entry(2));
    }

    #[test]
    fn find_by_seq_with_dense_numbers() {
        let mut rob = Rob::new(8);
        for s in 10..16 {
            rob.push(entry(s));
        }
        assert_eq!(rob.find_by_seq(12).unwrap().seq(), 12);
        assert!(rob.find_by_seq(9).is_none());
        assert!(rob.find_by_seq(16).is_none());
        rob.find_by_seq_mut(13).unwrap().issued = true;
        assert!(rob.find_by_seq(13).unwrap().issued);
    }

    #[test]
    fn slot_handles_resolve_in_o1_and_validate_generation() {
        let mut rob = Rob::new(8);
        let mut e = entry(3);
        e.sched_gen = 7;
        let slot = InstSlot { seq: 3, gen: 7 };
        rob.push(entry(0));
        rob.push(entry(1));
        rob.push(entry(2));
        assert_eq!(rob.push(e), slot);
        assert_eq!(rob.get(slot).unwrap().seq(), 3);
        // Wrong generation: the entry was re-dispatched; stale handle.
        assert!(rob.get(InstSlot { seq: 3, gen: 6 }).is_none());
        // Committed head: handle beyond the window resolves to None.
        rob.pop_head();
        assert!(rob.get(InstSlot { seq: 0, gen: 0 }).is_none());
        rob.get_mut(slot).unwrap().issued = true;
        assert!(rob.get(slot).unwrap().issued);
    }

    #[test]
    fn arena_slots_wrap_around_the_ring() {
        // Capacity 4 (mask 3): sequence numbers far beyond the capacity
        // keep mapping onto distinct slots as the window slides.
        let mut rob = Rob::new(4);
        for s in 0..4 {
            rob.push(entry(s));
        }
        for s in 4..40 {
            assert!(rob.is_full());
            assert_eq!(rob.pop_head().unwrap().seq(), s - 4);
            rob.push(entry(s));
            assert_eq!(rob.find_by_seq(s).unwrap().seq(), s);
        }
        let seqs: Vec<u64> = rob.iter().map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![36, 37, 38, 39]);
    }

    #[test]
    fn squash_removes_younger_entries() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        let squashed = rob.squash_from(3);
        assert_eq!(squashed.len(), 3);
        assert_eq!(squashed[0].seq(), 3);
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.iter().last().unwrap().seq(), 2);
        // Replay refills the squashed range.
        for s in 3..6 {
            rob.push(entry(s));
        }
        assert_eq!(rob.len(), 6);
        assert_eq!(rob.find_by_seq(5).unwrap().seq(), 5);
    }

    #[test]
    fn squash_from_each_visits_oldest_first_without_collecting() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        let mut seen = Vec::new();
        rob.squash_from_each(2, |e| seen.push(e.seq()));
        assert_eq!(seen, vec![2, 3, 4, 5]);
        assert_eq!(rob.len(), 2);
        // A squash point beyond the youngest entry is a no-op and must
        // not corrupt the occupancy (regression: the arena once set
        // `len` from the unclamped squash point).
        rob.squash_from_each(100, |_| panic!("nothing is younger than seq 100"));
        assert_eq!(rob.len(), 2);
        assert!(!rob.is_full());
        rob.push(entry(2));
        assert_eq!(rob.len(), 3);
        // Squashing everything (and an empty ROB) is fine too.
        rob.squash_from_each(0, |_| {});
        assert!(rob.is_empty());
        rob.squash_from_each(0, |_| panic!("empty ROB has nothing to squash"));
    }

    #[test]
    fn src_regs_inline_list_behaves_like_a_vec() {
        let mut srcs = SrcRegs::new();
        assert!(srcs.is_empty());
        let a = PhysReg::new(RegClass::Int, 5);
        let b = PhysReg::new(RegClass::Fp, 9);
        srcs.push(a);
        srcs.push(b);
        assert_eq!(srcs.len(), 2);
        assert_eq!(srcs.as_slice(), &[a, b]);
        assert!(srcs.iter().all(|&r| r == a || r == b));
        let collected: SrcRegs = [a, b].into_iter().collect();
        assert_eq!(collected, srcs);
        // Equality ignores the unused tail of the inline array.
        let mut other = SrcRegs::new();
        other.push(a);
        assert_ne!(other, srcs);
        other.push(b);
        assert_eq!(other, srcs);
    }

    #[test]
    #[should_panic(expected = "too many renamed sources")]
    fn src_regs_overflow_panics() {
        let mut srcs = SrcRegs::new();
        for i in 0..=MAX_SRC_REGS {
            srcs.push(PhysReg::new(RegClass::Int, i as u16));
        }
    }

    #[test]
    fn completion_rules() {
        let mut e = entry(0);
        assert!(!e.is_completed(100));
        e.issued = true;
        e.complete_at = 50;
        assert!(!e.is_completed(49));
        assert!(e.is_completed(50));
        let mut elim = entry(1);
        elim.eliminated = true;
        assert!(elim.is_completed(0));
    }
}

//! Per-stage cycle attribution (the `obs` observability feature).
//!
//! [`StageAttribution`] answers "where do the simulated cycles go?" — the
//! question the single opaque throughput numbers in `BENCH_*.json` cannot.
//! Every simulated cycle is classified **exactly once per stage** (fetch,
//! rename, issue) into a work-or-stall class, and the commit stage records
//! a commit-slot utilization histogram; each per-stage breakdown therefore
//! provably sums to the total simulated cycles
//! ([`StageAttribution::validate`]).
//!
//! The struct itself is always compiled (so its merge/validate logic is
//! testable in every build), but the *instrumentation* in
//! [`Core`](crate::Core) only exists under the `obs` cargo feature — with
//! the feature off, the counters cost nothing and
//! [`Core::attribution`](crate::Core::attribution) returns `None`.
//!
//! Attribution counters deliberately live **outside**
//! [`SimStats`](crate::SimStats): the simulated behaviour (and therefore
//! `SimStats`) is bit-identical with the feature on or off, which the
//! golden-stats tests pin, and the counters are likewise excluded from
//! campaign fingerprints — they describe the *simulator*, not the simulated
//! machine (see `DESIGN.md`).

// lint: exempt-file(obs-gate, defines the attribution types; always compiled for testability)

/// Per-cycle classification of the fetch stage. Exactly one field is
/// incremented per simulated cycle, so the fields sum to total cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchCycles {
    /// At least one instruction entered the fetch queue.
    pub active: u64,
    /// Fetch blocked on an unresolved branch misprediction or the redirect
    /// penalty after one.
    pub redirect: u64,
    /// The fetch/decode queue was full.
    pub queue_full: u64,
    /// The trace ended and the replay queue is empty (pipeline draining).
    pub drained: u64,
    /// None of the above (defensive catch-all; expected to stay zero).
    pub idle: u64,
}

impl FetchCycles {
    fn total(&self) -> u64 {
        self.active + self.redirect + self.queue_full + self.drained + self.idle
    }

    fn merge(&mut self, other: &FetchCycles) {
        self.active += other.active;
        self.redirect += other.redirect;
        self.queue_full += other.queue_full;
        self.drained += other.drained;
        self.idle += other.idle;
    }
}

/// Per-cycle classification of the rename/dispatch stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenameCycles {
    /// At least one instruction renamed and dispatched.
    pub active: u64,
    /// Stalled with the ROB full.
    pub rob_full: u64,
    /// Stalled with the IQ, LQ or SQ full.
    pub queue_full: u64,
    /// Stalled waiting for a free physical register.
    pub prf_stall: u64,
    /// Nothing to rename: the front end delivered no ready instruction.
    pub starved: u64,
}

impl RenameCycles {
    fn total(&self) -> u64 {
        self.active + self.rob_full + self.queue_full + self.prf_stall + self.starved
    }

    fn merge(&mut self, other: &RenameCycles) {
        self.active += other.active;
        self.rob_full += other.rob_full;
        self.queue_full += other.queue_full;
        self.prf_stall += other.prf_stall;
        self.starved += other.starved;
    }
}

/// Per-cycle classification of the issue stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueCycles {
    /// At least one instruction or validation µ-op issued.
    pub active: u64,
    /// Ready instructions existed but every one was denied an issue port.
    pub port_limited: u64,
    /// Nothing ready while at least one load miss was outstanding —
    /// the cycle is (approximately) attributed to waiting on memory.
    pub wait_mem: u64,
    /// Instructions are in the IQ but none is ready (dependence chains).
    pub no_ready: u64,
    /// The IQ is empty.
    pub empty: u64,
}

impl IssueCycles {
    fn total(&self) -> u64 {
        self.active + self.port_limited + self.wait_mem + self.no_ready + self.empty
    }

    fn merge(&mut self, other: &IssueCycles) {
        self.active += other.active;
        self.port_limited += other.port_limited;
        self.wait_mem += other.wait_mem;
        self.no_ready += other.no_ready;
        self.empty += other.empty;
    }
}

/// Execute-stage *work* counters (event counts, not per-cycle classes —
/// these do not sum to cycles and are not part of
/// [`StageAttribution::validate`]'s per-stage invariant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounts {
    /// Instructions issued to functional units.
    pub insts_issued: u64,
    /// Loads issued (including store-forwarded ones).
    pub loads_issued: u64,
    /// Issued loads whose cache latency exceeded the L1D hit latency.
    pub load_misses: u64,
    /// Stores issued.
    pub stores_issued: u64,
    /// Validation µ-ops issued.
    pub validations_issued: u64,
}

impl WorkCounts {
    fn merge(&mut self, other: &WorkCounts) {
        self.insts_issued += other.insts_issued;
        self.loads_issued += other.loads_issued;
        self.load_misses += other.load_misses;
        self.stores_issued += other.stores_issued;
        self.validations_issued += other.validations_issued;
    }
}

/// Why rename stopped before filling its width this cycle (reported by the
/// core's instrumentation; only consulted when nothing renamed at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameBlock {
    /// ROB full.
    RobFull,
    /// IQ/LQ/SQ full.
    QueueFull,
    /// No free physical register.
    PrfStall,
    /// Fetch queue empty or its head not yet through decode.
    Starved,
}

/// Per-stage cycle attribution of one simulation (or a merge of several).
///
/// Merges like [`SimStats`](crate::SimStats): field-wise, order-independent
/// and associative, so per-checkpoint attributions can be combined in any
/// grouping and produce identical totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageAttribution {
    /// Total cycles attributed (equals `SimStats::cycles` of the same
    /// window).
    pub cycles: u64,
    /// Fetch-stage breakdown (sums to `cycles`).
    pub fetch: FetchCycles,
    /// Rename-stage breakdown (sums to `cycles`).
    pub rename: RenameCycles,
    /// Issue-stage breakdown (sums to `cycles`).
    pub issue: IssueCycles,
    /// Commit-slot utilization histogram: `commit_slots[n]` counts the
    /// cycles in which exactly `n` instructions committed. The histogram
    /// entries sum to `cycles`.
    pub commit_slots: Vec<u64>,
    /// Execute-stage work counters (event counts, not cycle classes).
    pub work: WorkCounts,
}

impl StageAttribution {
    /// Records one commit cycle: `slots` instructions committed.
    pub fn record_commit(&mut self, slots: usize) {
        if self.commit_slots.len() <= slots {
            self.commit_slots.resize(slots + 1, 0);
        }
        self.commit_slots[slots] += 1;
    }

    /// Classifies one rename cycle.
    pub fn classify_rename(&mut self, renamed: u64, block: RenameBlock) {
        if renamed > 0 {
            self.rename.active += 1;
            return;
        }
        match block {
            RenameBlock::RobFull => self.rename.rob_full += 1,
            RenameBlock::QueueFull => self.rename.queue_full += 1,
            RenameBlock::PrfStall => self.rename.prf_stall += 1,
            RenameBlock::Starved => self.rename.starved += 1,
        }
    }

    /// Classifies one issue cycle from what the select loop observed:
    /// `issued` instructions + validations issued, `port_blocked` ready
    /// candidates denied a port, current IQ occupancy, and whether a load
    /// miss is still outstanding.
    pub fn classify_issue(
        &mut self,
        issued: u64,
        port_blocked: u64,
        iq_occupancy: usize,
        miss_outstanding: bool,
    ) {
        if issued > 0 {
            self.issue.active += 1;
        } else if port_blocked > 0 {
            self.issue.port_limited += 1;
        } else if iq_occupancy == 0 {
            self.issue.empty += 1;
        } else if miss_outstanding {
            self.issue.wait_mem += 1;
        } else {
            self.issue.no_ready += 1;
        }
    }

    /// Accumulates another window's attribution into this one. Field-wise
    /// addition — order-independent and associative, like
    /// [`SimStats::merge`](crate::SimStats::merge).
    pub fn merge(&mut self, other: &StageAttribution) {
        self.cycles += other.cycles;
        self.fetch.merge(&other.fetch);
        self.rename.merge(&other.rename);
        self.issue.merge(&other.issue);
        self.work.merge(&other.work);
        if self.commit_slots.len() < other.commit_slots.len() {
            self.commit_slots.resize(other.commit_slots.len(), 0);
        }
        for (mine, theirs) in self.commit_slots.iter_mut().zip(&other.commit_slots) {
            *mine += *theirs;
        }
    }

    /// Checks the core invariant: every per-stage breakdown (and the
    /// commit-slot histogram) sums to exactly `expected_cycles`, which must
    /// equal the attributed cycle count. Returns a description of the first
    /// violation found.
    pub fn validate(&self, expected_cycles: u64) -> Result<(), String> {
        if self.cycles != expected_cycles {
            return Err(format!(
                "attributed {} cycles but the simulation ran {expected_cycles}",
                self.cycles
            ));
        }
        let commit_total: u64 = self.commit_slots.iter().sum();
        for (stage, total) in [
            ("fetch", self.fetch.total()),
            ("rename", self.rename.total()),
            ("issue", self.issue.total()),
            ("commit", commit_total),
        ] {
            if total != expected_cycles {
                return Err(format!(
                    "{stage} classes sum to {total}, expected {expected_cycles} cycles"
                ));
            }
        }
        Ok(())
    }

    /// The per-cycle stage breakdowns as `(stage, class, cycles)` rows, in
    /// a stable order — the machine-readable form the bench records and the
    /// CLI table are both built from.
    pub fn stage_rows(&self) -> Vec<(&'static str, &'static str, u64)> {
        vec![
            ("fetch", "active", self.fetch.active),
            ("fetch", "redirect", self.fetch.redirect),
            ("fetch", "queue_full", self.fetch.queue_full),
            ("fetch", "drained", self.fetch.drained),
            ("fetch", "idle", self.fetch.idle),
            ("rename", "active", self.rename.active),
            ("rename", "rob_full", self.rename.rob_full),
            ("rename", "queue_full", self.rename.queue_full),
            ("rename", "prf_stall", self.rename.prf_stall),
            ("rename", "starved", self.rename.starved),
            ("issue", "active", self.issue.active),
            ("issue", "port_limited", self.issue.port_limited),
            ("issue", "wait_mem", self.issue.wait_mem),
            ("issue", "no_ready", self.issue.no_ready),
            ("issue", "empty", self.issue.empty),
        ]
    }

    /// The execute-stage work counters as `(name, count)` rows.
    pub fn work_rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("insts_issued", self.work.insts_issued),
            ("loads_issued", self.work.loads_issued),
            ("load_misses", self.work.load_misses),
            ("stores_issued", self.work.stores_issued),
            ("validations_issued", self.work.validations_issued),
        ]
    }

    /// Renders the attribution as a human-readable table (the `rsep run
    /// --attribution` report).
    pub fn render_table(&self) -> String {
        let pct = |n: u64| {
            if self.cycles == 0 {
                0.0
            } else {
                n as f64 * 100.0 / self.cycles as f64
            }
        };
        let mut out = format!("per-stage cycle attribution over {} cycles\n", self.cycles);
        let mut last_stage = "";
        for (stage, class, cycles) in self.stage_rows() {
            if stage != last_stage {
                out.push_str(&format!("{stage}\n"));
                last_stage = stage;
            }
            out.push_str(&format!("  {class:<14}{cycles:>14}  {:>5.1}%\n", pct(cycles)));
        }
        out.push_str("commit slots (instructions committed per cycle)\n");
        for (slots, count) in self.commit_slots.iter().enumerate() {
            out.push_str(&format!("  {slots:<14}{count:>14}  {:>5.1}%\n", pct(*count)));
        }
        out.push_str("work counters\n");
        for (name, count) in self.work_rows() {
            out.push_str(&format!("  {name:<20}{count:>14}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> StageAttribution {
        // A synthetic but internally consistent attribution: every stage
        // group sums to `cycles`.
        let cycles = 10 + seed % 7;
        let a = seed % (cycles + 1);
        let mut s = StageAttribution {
            cycles,
            fetch: FetchCycles { active: a, redirect: cycles - a, ..FetchCycles::default() },
            rename: RenameCycles { active: cycles, ..RenameCycles::default() },
            issue: IssueCycles { no_ready: cycles - a, active: a, ..IssueCycles::default() },
            commit_slots: Vec::new(),
            work: WorkCounts { insts_issued: seed, ..WorkCounts::default() },
        };
        s.commit_slots = vec![cycles - a, a];
        s
    }

    #[test]
    fn validate_accepts_consistent_and_rejects_inconsistent() {
        let s = sample(3);
        assert_eq!(s.validate(s.cycles), Ok(()));
        assert!(s.validate(s.cycles + 1).is_err());
        let mut broken = s.clone();
        broken.fetch.idle += 1;
        assert!(broken.validate(broken.cycles).unwrap_err().contains("fetch"));
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        for seeds in [[1u64, 2, 3], [5, 5, 9], [0, 7, 11]] {
            let (a, b, c) = (sample(seeds[0]), sample(seeds[1]), sample(seeds[2]));
            // (a + b) + c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a + (b + c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "merge must be associative");
            // b + a == a + b
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge must be commutative");
            assert_eq!(left.validate(a.cycles + b.cycles + c.cycles), Ok(()));
        }
    }

    #[test]
    fn merged_histograms_grow_to_the_longer_one() {
        let mut a = StageAttribution::default();
        a.record_commit(0);
        a.record_commit(2);
        let mut b = StageAttribution::default();
        b.record_commit(5);
        a.merge(&b);
        assert_eq!(a.commit_slots, vec![1, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn issue_classification_priorities() {
        let mut s = StageAttribution::default();
        s.classify_issue(3, 1, 10, true);
        assert_eq!(s.issue.active, 1);
        s.classify_issue(0, 2, 10, true);
        assert_eq!(s.issue.port_limited, 1);
        s.classify_issue(0, 0, 0, true);
        assert_eq!(s.issue.empty, 1);
        s.classify_issue(0, 0, 4, true);
        assert_eq!(s.issue.wait_mem, 1);
        s.classify_issue(0, 0, 4, false);
        assert_eq!(s.issue.no_ready, 1);
    }

    #[test]
    fn rename_classification_prefers_work_over_stalls() {
        let mut s = StageAttribution::default();
        s.classify_rename(4, RenameBlock::RobFull);
        assert_eq!(s.rename.active, 1);
        assert_eq!(s.rename.rob_full, 0);
        s.classify_rename(0, RenameBlock::RobFull);
        s.classify_rename(0, RenameBlock::QueueFull);
        s.classify_rename(0, RenameBlock::PrfStall);
        s.classify_rename(0, RenameBlock::Starved);
        assert_eq!(
            (s.rename.rob_full, s.rename.queue_full, s.rename.prf_stall, s.rename.starved),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn table_renders_every_stage_and_class() {
        let s = sample(4);
        let table = s.render_table();
        for needle in ["fetch", "rename", "issue", "commit slots", "insts_issued", "wait_mem"] {
            assert!(table.contains(needle), "missing '{needle}' in:\n{table}");
        }
    }
}

//! Model-based equivalence: the slot-arena ROB against the retained
//! `VecDeque` reference backend.
//!
//! Random sequences of the operations the core actually performs —
//! dispatch, sequence/handle lookup, completion marking, in-order commit
//! and squash-with-replay — are applied to both [`RobKind`] backends in
//! lockstep. After every operation the observable state (lengths, heads,
//! per-sequence entries, handle resolution including stale-generation
//! rejection, iteration order) must match exactly. This is the
//! structure-level complement to the golden-stats campaigns, which prove
//! the same equivalence end-to-end through the simulator.

use proptest::collection;
use proptest::prelude::*;
use rsep_isa::{ArchReg, DynInst, OpClass};
use rsep_uarch::{Disposition, InflightInst, InstSlot, Rob, RobKind, SrcRegs};

const CAPACITY: usize = 12;

fn entry(seq: u64, gen: u64) -> InflightInst {
    InflightInst {
        inst: DynInst::simple(seq, 0x40_0000 + seq * 4, OpClass::IntAlu, ArchReg::int(1), seq),
        dest_preg: None,
        prev_preg: None,
        allocated_new_preg: false,
        src_pregs: SrcRegs::new(),
        disposition: Disposition::None,
        eliminated: false,
        in_iq: true,
        issued: false,
        complete_at: 0,
        renamed_at: 0,
        branch_mispredicted: false,
        needs_validation_issue: None,
        uses_lq: false,
        uses_sq: false,
        sched_gen: gen,
        pending_srcs: 0,
        wake_at: 0,
    }
}

fn assert_same_entry(a: Option<&InflightInst>, b: Option<&InflightInst>, what: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.seq(), b.seq(), "{what}: seq diverges");
            assert_eq!(a.sched_gen, b.sched_gen, "{what}: generation diverges");
            assert_eq!(a.issued, b.issued, "{what}: issued diverges");
            assert_eq!(a.complete_at, b.complete_at, "{what}: complete_at diverges");
        }
        (a, b) => {
            panic!("{what}: presence diverges (arena={}, deque={})", a.is_some(), b.is_some())
        }
    }
}

fn assert_same_state(arena: &Rob, deque: &Rob) {
    assert_eq!(arena.len(), deque.len(), "occupancy diverges");
    assert_eq!(arena.is_empty(), deque.is_empty());
    assert_eq!(arena.is_full(), deque.is_full());
    assert_same_entry(arena.head(), deque.head(), "head");
    let a_seqs: Vec<(u64, u64)> = arena.iter().map(|e| (e.seq(), e.sched_gen)).collect();
    let d_seqs: Vec<(u64, u64)> = deque.iter().map(|e| (e.seq(), e.sched_gen)).collect();
    assert_eq!(a_seqs, d_seqs, "iteration order diverges");
}

/// Raw operation: `(selector, payload, payload2)`.
type RawOp = (u8, u64, u64);

fn run_ops(ops: &[RawOp]) {
    let mut arena = Rob::with_kind(CAPACITY, RobKind::Arena);
    let mut deque = Rob::with_kind(CAPACITY, RobKind::Deque);
    assert_eq!(arena.kind(), RobKind::Arena);
    assert_eq!(deque.kind(), RobKind::Deque);
    let mut next_seq = 0u64;
    let mut next_gen = 0u64;
    // Handles returned by push, kept (unpruned) so lookups exercise stale
    // generations and committed/squashed sequence numbers too.
    let mut handles: Vec<InstSlot> = Vec::new();

    for &(op_sel, payload, payload2) in ops {
        let head_seq = arena.head().map(|e| e.seq());
        let len = arena.len() as u64;
        match op_sel % 8 {
            // Dispatch (weighted heaviest so the window actually fills).
            0..=2 => {
                if !arena.is_full() {
                    let a = arena.push(entry(next_seq, next_gen));
                    let d = deque.push(entry(next_seq, next_gen));
                    assert_eq!(a, d, "push handles diverge");
                    assert_eq!(a, InstSlot { seq: next_seq, gen: next_gen });
                    handles.push(a);
                    next_seq += 1;
                    next_gen += 1;
                }
            }
            // Mark a random in-flight instruction completed (what issue +
            // writeback do).
            3 => {
                if let Some(head) = head_seq {
                    let seq = head + payload % len.max(1);
                    assert_same_entry(arena.find_by_seq(seq), deque.find_by_seq(seq), "find");
                    if let Some(e) = arena.find_by_seq_mut(seq) {
                        e.issued = true;
                        e.complete_at = payload2;
                    }
                    if let Some(e) = deque.find_by_seq_mut(seq) {
                        e.issued = true;
                        e.complete_at = payload2;
                    }
                }
            }
            // Commit the head.
            4 => {
                let a = arena.pop_head();
                let d = deque.pop_head();
                assert_same_entry(a.as_ref(), d.as_ref(), "pop_head");
            }
            // Squash from a random point (possibly the head, possibly
            // beyond the tail = no-op), then replay re-dispatches the same
            // sequence numbers under fresh generations.
            5 => {
                if let Some(head) = head_seq {
                    let from_seq = head + payload % (len + 3);
                    let mut d_squashed = Vec::new();
                    let a_squashed = arena.squash_from(from_seq);
                    deque.squash_from_each(from_seq, |e| d_squashed.push(e));
                    assert_eq!(a_squashed.len(), d_squashed.len(), "squash count diverges");
                    for (a, d) in a_squashed.iter().zip(&d_squashed) {
                        assert_same_entry(Some(a), Some(d), "squashed entry");
                    }
                    // Oldest-first and dense.
                    for (i, e) in a_squashed.iter().enumerate() {
                        assert_eq!(e.seq(), from_seq.max(head) + i as u64);
                    }
                    next_seq = from_seq.max(head).min(next_seq);
                    // Replay a prefix of the squashed instructions now.
                    let replay = payload2 % (a_squashed.len() as u64 + 1);
                    for _ in 0..replay {
                        let a = arena.push(entry(next_seq, next_gen));
                        let d = deque.push(entry(next_seq, next_gen));
                        assert_eq!(a, d);
                        handles.push(a);
                        next_seq += 1;
                        next_gen += 1;
                    }
                }
            }
            // Resolve a previously returned handle: both backends must
            // agree, and a handle whose generation is stale (the sequence
            // number was re-dispatched) must resolve to None.
            6 => {
                if !handles.is_empty() {
                    let slot = handles[(payload % handles.len() as u64) as usize];
                    assert_same_entry(arena.get(slot), deque.get(slot), "get(slot)");
                    if let Some(e) = arena.get(slot) {
                        assert_eq!(e.seq(), slot.seq);
                        assert_eq!(e.sched_gen, slot.gen);
                    }
                    let stale = InstSlot { seq: slot.seq, gen: slot.gen + 1_000_000 };
                    assert!(arena.get(stale).is_none(), "stale generation must not resolve");
                    assert!(deque.get(stale).is_none());
                }
            }
            // Lookup around the window edges (committed, live, future).
            _ => {
                let base = head_seq.unwrap_or(next_seq);
                let seq = (base + payload % (len + 4)).saturating_sub(2);
                assert_same_entry(arena.find_by_seq(seq), deque.find_by_seq(seq), "edge find");
            }
        }
        assert_same_state(&arena, &deque);
    }
}

proptest! {
    /// Random dispatch/complete/commit/squash sequences: the arena and the
    /// deque reference stay observably identical after every operation.
    #[test]
    fn arena_rob_matches_the_deque_reference_model(
        ops in collection::vec(
            (proptest::prelude::any::<u8>(), 0u64..64, 0u64..64),
            1..400,
        )
    ) {
        run_ops(&ops);
    }
}

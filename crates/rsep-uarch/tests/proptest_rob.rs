//! Model-based equivalence: the slot-arena ROB against a straightforward
//! in-test reference model.
//!
//! The retired `RobKind::Deque` backend used to be the reference; since
//! its removal (the PR 4 equivalence proofs are in), this test keeps the
//! arena pinned against an ordered-`Vec` model that implements the ROB
//! contract in the most obvious way possible. Random sequences of the
//! operations the core actually performs — dispatch, sequence/handle
//! lookup, completion marking, in-order commit and squash-with-replay —
//! are applied to both in lockstep. After every operation the observable
//! state (lengths, heads, per-sequence entries, handle resolution
//! including stale-generation rejection, iteration order) must match
//! exactly. This is the structure-level complement to the golden-stats
//! campaigns, which prove simulator-level behaviour end-to-end.

use proptest::collection;
use proptest::prelude::*;
use rsep_isa::{ArchReg, DynInst, OpClass};
use rsep_uarch::{Disposition, InflightInst, InstSlot, Rob, SrcRegs};

const CAPACITY: usize = 12;

fn entry(seq: u64, gen: u64) -> InflightInst {
    InflightInst {
        inst: DynInst::simple(seq, 0x40_0000 + seq * 4, OpClass::IntAlu, ArchReg::int(1), seq),
        dest_preg: None,
        prev_preg: None,
        allocated_new_preg: false,
        src_pregs: SrcRegs::new(),
        disposition: Disposition::None,
        eliminated: false,
        in_iq: true,
        issued: false,
        complete_at: 0,
        renamed_at: 0,
        branch_mispredicted: false,
        needs_validation_issue: None,
        uses_lq: false,
        uses_sq: false,
        sched_gen: gen,
        pending_srcs: 0,
        wake_at: 0,
    }
}

/// The reference model: an ordered `Vec` of in-flight entries (oldest
/// first) with the same dense-sequence contract as the arena.
#[derive(Default)]
struct ModelRob {
    entries: Vec<InflightInst>,
}

impl ModelRob {
    fn push(&mut self, entry: InflightInst) -> InstSlot {
        assert!(self.entries.len() < CAPACITY, "model overflow");
        if let Some(last) = self.entries.last() {
            assert_eq!(entry.seq(), last.seq() + 1, "model: non-dense dispatch");
        }
        let slot = entry.slot();
        self.entries.push(entry);
        slot
    }

    fn pop_head(&mut self) -> Option<InflightInst> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    fn find_by_seq(&self, seq: u64) -> Option<&InflightInst> {
        self.entries.iter().find(|e| e.seq() == seq)
    }

    fn find_by_seq_mut(&mut self, seq: u64) -> Option<&mut InflightInst> {
        self.entries.iter_mut().find(|e| e.seq() == seq)
    }

    fn get(&self, slot: InstSlot) -> Option<&InflightInst> {
        self.find_by_seq(slot.seq).filter(|e| e.sched_gen == slot.gen)
    }

    fn squash_from(&mut self, from_seq: u64) -> Vec<InflightInst> {
        let keep = self.entries.iter().position(|e| e.seq() >= from_seq);
        match keep {
            Some(idx) => self.entries.split_off(idx),
            None => Vec::new(),
        }
    }
}

fn assert_same_entry(a: Option<&InflightInst>, b: Option<&InflightInst>, what: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.seq(), b.seq(), "{what}: seq diverges");
            assert_eq!(a.sched_gen, b.sched_gen, "{what}: generation diverges");
            assert_eq!(a.issued, b.issued, "{what}: issued diverges");
            assert_eq!(a.complete_at, b.complete_at, "{what}: complete_at diverges");
        }
        (a, b) => {
            panic!("{what}: presence diverges (arena={}, model={})", a.is_some(), b.is_some())
        }
    }
}

fn assert_same_state(arena: &Rob, model: &ModelRob) {
    assert_eq!(arena.len(), model.entries.len(), "occupancy diverges");
    assert_eq!(arena.is_empty(), model.entries.is_empty());
    assert_eq!(arena.is_full(), model.entries.len() >= CAPACITY);
    assert_same_entry(arena.head(), model.entries.first(), "head");
    let a_seqs: Vec<(u64, u64)> = arena.iter().map(|e| (e.seq(), e.sched_gen)).collect();
    let m_seqs: Vec<(u64, u64)> = model.entries.iter().map(|e| (e.seq(), e.sched_gen)).collect();
    assert_eq!(a_seqs, m_seqs, "iteration order diverges");
}

/// Raw operation: `(selector, payload, payload2)`.
type RawOp = (u8, u64, u64);

fn run_ops(ops: &[RawOp]) {
    let mut arena = Rob::new(CAPACITY);
    let mut model = ModelRob::default();
    let mut next_seq = 0u64;
    let mut next_gen = 0u64;
    // Handles returned by push, kept (unpruned) so lookups exercise stale
    // generations and committed/squashed sequence numbers too.
    let mut handles: Vec<InstSlot> = Vec::new();

    for &(op_sel, payload, payload2) in ops {
        let head_seq = arena.head().map(|e| e.seq());
        let len = arena.len() as u64;
        match op_sel % 8 {
            // Dispatch (weighted heaviest so the window actually fills).
            0..=2 => {
                if !arena.is_full() {
                    let a = arena.push(entry(next_seq, next_gen));
                    let m = model.push(entry(next_seq, next_gen));
                    assert_eq!(a, m, "push handles diverge");
                    assert_eq!(a, InstSlot { seq: next_seq, gen: next_gen });
                    handles.push(a);
                    next_seq += 1;
                    next_gen += 1;
                }
            }
            // Mark a random in-flight instruction completed (what issue +
            // writeback do).
            3 => {
                if let Some(head) = head_seq {
                    let seq = head + payload % len.max(1);
                    assert_same_entry(arena.find_by_seq(seq), model.find_by_seq(seq), "find");
                    if let Some(e) = arena.find_by_seq_mut(seq) {
                        e.issued = true;
                        e.complete_at = payload2;
                    }
                    if let Some(e) = model.find_by_seq_mut(seq) {
                        e.issued = true;
                        e.complete_at = payload2;
                    }
                }
            }
            // Commit the head.
            4 => {
                let a = arena.pop_head();
                let m = model.pop_head();
                assert_same_entry(a.as_ref(), m.as_ref(), "pop_head");
            }
            // Squash from a random point (possibly the head, possibly
            // beyond the tail = no-op), then replay re-dispatches the same
            // sequence numbers under fresh generations.
            5 => {
                if let Some(head) = head_seq {
                    let from_seq = head + payload % (len + 3);
                    let a_squashed = arena.squash_from(from_seq);
                    let m_squashed = model.squash_from(from_seq);
                    assert_eq!(a_squashed.len(), m_squashed.len(), "squash count diverges");
                    for (a, m) in a_squashed.iter().zip(&m_squashed) {
                        assert_same_entry(Some(a), Some(m), "squashed entry");
                    }
                    // Oldest-first and dense.
                    for (i, e) in a_squashed.iter().enumerate() {
                        assert_eq!(e.seq(), from_seq.max(head) + i as u64);
                    }
                    next_seq = from_seq.max(head).min(next_seq);
                    // Replay a prefix of the squashed instructions now.
                    let replay = payload2 % (a_squashed.len() as u64 + 1);
                    for _ in 0..replay {
                        let a = arena.push(entry(next_seq, next_gen));
                        let m = model.push(entry(next_seq, next_gen));
                        assert_eq!(a, m);
                        handles.push(a);
                        next_seq += 1;
                        next_gen += 1;
                    }
                }
            }
            // Resolve a previously returned handle: both must agree, and a
            // handle whose generation is stale (the sequence number was
            // re-dispatched) must resolve to None.
            6 => {
                if !handles.is_empty() {
                    let slot = handles[(payload % handles.len() as u64) as usize];
                    assert_same_entry(arena.get(slot), model.get(slot), "get(slot)");
                    if let Some(e) = arena.get(slot) {
                        assert_eq!(e.seq(), slot.seq);
                        assert_eq!(e.sched_gen, slot.gen);
                    }
                    let stale = InstSlot { seq: slot.seq, gen: slot.gen + 1_000_000 };
                    assert!(arena.get(stale).is_none(), "stale generation must not resolve");
                    assert!(model.get(stale).is_none());
                }
            }
            // Lookup around the window edges (committed, live, future).
            _ => {
                let base = head_seq.unwrap_or(next_seq);
                let seq = (base + payload % (len + 4)).saturating_sub(2);
                assert_same_entry(arena.find_by_seq(seq), model.find_by_seq(seq), "edge find");
            }
        }
        assert_same_state(&arena, &model);
    }
}

proptest! {
    /// Random dispatch/complete/commit/squash sequences: the arena and the
    /// ordered-Vec reference model stay observably identical after every
    /// operation.
    #[test]
    fn arena_rob_matches_the_reference_model(
        ops in collection::vec(
            (proptest::prelude::any::<u8>(), 0u64..64, 0u64..64),
            1..400,
        )
    ) {
        run_ops(&ops);
    }
}

//! End-to-end and property tests for the `obs` per-stage cycle
//! attribution.
//!
//! The unit tests in `attribution.rs` pin the classification rules on
//! synthetic inputs; these tests drive the *real* core over real generated
//! traces and check the structural invariant the whole feature rests on:
//! every cycle is attributed to exactly one class per stage, so each
//! stage's counters sum to `SimStats::cycles` — on any workload, under
//! either scheduler, and across `reset_stats`. The
//! property tests check that [`StageAttribution::merge`] is associative
//! and commutative on arbitrary counter values, which is what lets
//! checkpoint attributions be merged in any grouping.

#![cfg(feature = "obs")]

use proptest::collection;
use proptest::prelude::*;
use rsep_trace::{BenchmarkProfile, TraceGenerator};
use rsep_uarch::{Core, CoreConfig, SchedulerKind, StageAttribution};

/// Runs `commits` instructions of `profile` on a fresh baseline core and
/// returns the validated attribution.
fn run_attributed(profile: &str, commits: u64, scheduler: SchedulerKind) -> StageAttribution {
    let profile = BenchmarkProfile::by_name(profile).expect("known profile");
    let mut config = CoreConfig::table1();
    config.scheduler = scheduler;
    let mut core = Core::baseline(config);
    let mut trace = TraceGenerator::new(&profile, 42).take(commits as usize + 2_000);
    core.run(&mut trace, commits).expect("trace cannot wedge");
    let attribution = core.take_attribution().expect("obs build");
    attribution
        .validate(core.stats().cycles)
        .expect("every stage's cycles sum to SimStats::cycles");
    attribution
}

#[test]
fn stage_counters_sum_to_cycles_on_real_traces() {
    for profile in ["gcc", "mcf"] {
        for scheduler in [SchedulerKind::EventDriven, SchedulerKind::Polling] {
            let a = run_attributed(profile, 5_000, scheduler);
            // Work counters are sanity-bounded, not exact: every cycle
            // loop commits at least the requested instructions.
            assert!(a.work.insts_issued >= 5_000, "{profile}: {a:?}");
            assert!(a.commit_slots.iter().sum::<u64>() == a.cycles);
        }
    }
}

#[test]
fn attribution_survives_reset_stats_mid_run() {
    // The measure-phase protocol: warm up, reset, measure. The attribution
    // must restart with the stats so the two stay in lockstep.
    let profile = BenchmarkProfile::by_name("gcc").expect("known profile");
    let mut core = Core::baseline(CoreConfig::table1());
    let mut trace = TraceGenerator::new(&profile, 7).take(20_000);
    core.run(&mut trace, 2_000).expect("warm-up cannot wedge");
    core.reset_stats();
    core.run(&mut trace, 4_000).expect("measure cannot wedge");
    let attribution = core.take_attribution().expect("obs build");
    attribution.validate(core.stats().cycles).expect("post-reset attribution sums to cycles");
    assert!(attribution.cycles > 0);
}

#[test]
fn take_attribution_leaves_a_fresh_accumulator() {
    let profile = BenchmarkProfile::by_name("gcc").expect("known profile");
    let mut core = Core::baseline(CoreConfig::table1());
    let mut trace = TraceGenerator::new(&profile, 42).take(10_000);
    core.run(&mut trace, 2_000).expect("trace cannot wedge");
    let first = core.take_attribution().expect("obs build");
    assert!(first.cycles > 0);
    let second = core.take_attribution().expect("obs build");
    assert_eq!(second, StageAttribution::default());
}

/// Builds an attribution from raw random counters: 1 cycle total, 15 stage
/// counters, 5 work counters, and whatever is left (0–5 values) as the
/// commit-slot histogram. (The vendored proptest has no `prop_map`, so the
/// properties draw the raw vector and build the value in their bodies.)
fn build(values: &[u64]) -> StageAttribution {
    let mut a = StageAttribution { cycles: values[0], ..StageAttribution::default() };
    a.fetch.active = values[1];
    a.fetch.redirect = values[2];
    a.fetch.queue_full = values[3];
    a.fetch.drained = values[4];
    a.fetch.idle = values[5];
    a.rename.active = values[6];
    a.rename.rob_full = values[7];
    a.rename.queue_full = values[8];
    a.rename.prf_stall = values[9];
    a.rename.starved = values[10];
    a.issue.active = values[11];
    a.issue.port_limited = values[12];
    a.issue.wait_mem = values[13];
    a.issue.no_ready = values[14];
    a.issue.empty = values[15];
    a.work.insts_issued = values[16];
    a.work.loads_issued = values[17];
    a.work.load_misses = values[18];
    a.work.stores_issued = values[19];
    a.work.validations_issued = values[20];
    a.commit_slots = values[21..].to_vec();
    a
}

/// Raw counters for one [`build`] call: 21 fixed + 0–5 histogram buckets.
fn arb_counters() -> collection::VecStrategy<std::ops::Range<u64>> {
    collection::vec(0u64..1_000, 21..27)
}

fn merged(a: &StageAttribution, b: &StageAttribution) -> StageAttribution {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// Merging is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`. This is what
    /// lets a campaign merge per-checkpoint attributions in any grouping
    /// (per benchmark first, or one flat pass) and get the same totals.
    #[test]
    fn merge_is_associative(
        a in arb_counters(),
        b in arb_counters(),
        c in arb_counters(),
    ) {
        let (a, b, c) = (build(&a), build(&b), build(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// Merging is commutative, so completion order of parallel cells
    /// cannot change the merged table.
    #[test]
    fn merge_is_commutative(a in arb_counters(), b in arb_counters()) {
        let (a, b) = (build(&a), build(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// The default value is the merge identity.
    #[test]
    fn default_is_the_merge_identity(a in arb_counters()) {
        let a = build(&a);
        prop_assert_eq!(merged(&a, &StageAttribution::default()), a.clone());
        prop_assert_eq!(merged(&StageAttribution::default(), &a), a);
    }
}

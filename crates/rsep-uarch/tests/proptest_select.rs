//! Property test: the event-driven scheduler is observationally equivalent
//! to the polling oracle.
//!
//! Random instruction DAGs — mixed op classes, dense register reuse (real
//! dependency chains), same-double-word store/load collisions and
//! hard-to-predict branches — are simulated under both
//! [`SchedulerKind::Polling`] (the original full-ROB rescan, kept as the
//! oracle) and [`SchedulerKind::EventDriven`]. Retirement is in program
//! order by construction, so equality of the full [`SimStats`] (cycles,
//! commit counts, forwarding, stalls, cache counters) proves identical
//! retirement order and timing.

use proptest::prelude::*;
use rsep_isa::{ArchReg, BranchKind, DynInst, DynInstBuilder, OpClass};
use rsep_uarch::{Core, CoreConfig, SchedulerKind, SimStats};

/// One raw generated instruction: `(op selector, dest, src1, src2,
/// address selector, value)`.
type RawInst = (u8, u8, u8, u8, u64, u64);

/// Decodes a raw tuple into a dynamic instruction. Register indices are
/// folded into 8 architectural registers and addresses into 24
/// double-words, so dependency chains and same-address store/load pairs
/// are dense.
fn decode(seq: u64, raw: RawInst) -> DynInst {
    let (op_sel, dest, src1, src2, addr_sel, value) = raw;
    let pc = 0x40_0000 + (seq % 32) * 4;
    let dest = ArchReg::int(dest % 8);
    let src1 = ArchReg::int(src1 % 8);
    let src2 = ArchReg::int(src2 % 8);
    let addr = 0x1000_0000 + (addr_sel % 24) * 8;
    match op_sel % 12 {
        0..=3 => DynInstBuilder::new(seq, pc, OpClass::IntAlu)
            .dest(dest)
            .src(src1)
            .src(src2)
            .result(value)
            .build(),
        4 => DynInstBuilder::new(seq, pc, OpClass::IntMul)
            .dest(dest)
            .src(src1)
            .src(src2)
            .result(value)
            .build(),
        5 => {
            DynInstBuilder::new(seq, pc, OpClass::IntDiv).dest(dest).src(src1).result(value).build()
        }
        6 | 7 => DynInstBuilder::new(seq, pc, OpClass::Load)
            .dest(dest)
            .src(src1)
            .result(value)
            .mem(addr, 8)
            .build(),
        8 | 9 => DynInstBuilder::new(seq, pc, OpClass::Store)
            .src(src1)
            .src(src2)
            .result(value)
            .mem(addr, 8)
            .build(),
        10 => DynInstBuilder::new(seq, pc, OpClass::Branch)
            .branch(BranchKind::Conditional, value & 1 == 1, pc + 4)
            .build(),
        _ => DynInstBuilder::new(seq, pc, OpClass::Nop).build(),
    }
}

fn simulate(insts: &[DynInst], scheduler: SchedulerKind) -> SimStats {
    let mut config = CoreConfig::small_test();
    config.scheduler = scheduler;
    let mut core = Core::baseline(config);
    let mut trace = insts.iter().cloned();
    core.run(&mut trace, insts.len() as u64).expect("random DAGs cannot wedge the baseline");
    core.take_stats()
}

proptest! {
    /// For every random DAG, both schedulers commit every instruction and
    /// produce bit-identical statistics.
    #[test]
    fn event_driven_matches_polling_on_random_dags(
        raws in collection::vec(
            (0u8..12, 0u8..8, 0u8..8, 0u8..8, 0u64..24, 0u64..1_000_000),
            20..220,
        )
    ) {
        let insts: Vec<DynInst> =
            raws.iter().enumerate().map(|(i, &raw)| decode(i as u64, raw)).collect();
        let event = simulate(&insts, SchedulerKind::EventDriven);
        let polling = simulate(&insts, SchedulerKind::Polling);
        prop_assert_eq!(event.committed, insts.len() as u64);
        prop_assert_eq!(&event, &polling);
    }
}

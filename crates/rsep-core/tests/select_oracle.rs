//! Scheduler-oracle equivalence under full speculation, and squash-path
//! register-file invariants.
//!
//! The event-driven scheduler in `rsep-uarch` must be observationally
//! identical to the retained polling implementation *with every speculation
//! mechanism active* — register sharing adds provider dependencies at
//! rename, validations consume issue ports, and value/zero/equality
//! mispredictions squash and replay the pipeline, all of which stress the
//! wakeup bookkeeping far harder than the baseline core. These tests run
//! the same traces under both [`SchedulerKind`] values and require
//! bit-identical [`SimStats`].

use proptest::prelude::*;
use rsep_core::{run_checkpoint, MechanismConfig, RsepEngine};
use rsep_isa::{ArchReg, BranchKind, DynInst, DynInstBuilder, OpClass};
use rsep_trace::{BenchmarkProfile, CheckpointSpec};
use rsep_uarch::{Core, CoreConfig, SchedulerKind, SimStats};

fn config_with(scheduler: SchedulerKind) -> CoreConfig {
    let mut config = CoreConfig::small_test();
    config.scheduler = scheduler;
    config
}

#[test]
fn event_driven_matches_polling_under_every_mechanism() {
    let spec = CheckpointSpec::scaled(2, 2_000, 8_000);
    let mechanisms = [
        MechanismConfig::baseline(),
        MechanismConfig::move_elim(),
        MechanismConfig::zero_pred(),
        MechanismConfig::value_pred(),
        MechanismConfig::rsep_ideal(),
        MechanismConfig::rsep_realistic(),
        MechanismConfig::rsep_plus_vp(),
    ];
    for name in ["gcc", "mcf", "libquantum", "perlbench"] {
        let profile = BenchmarkProfile::by_name(name).unwrap();
        for mechanism in &mechanisms {
            for index in 0..spec.count {
                let event = run_checkpoint(
                    &profile,
                    mechanism,
                    &config_with(SchedulerKind::EventDriven),
                    spec,
                    42,
                    index,
                );
                let polling = run_checkpoint(
                    &profile,
                    mechanism,
                    &config_with(SchedulerKind::Polling),
                    spec,
                    42,
                    index,
                );
                assert!(event.is_ok() && polling.is_ok());
                assert_eq!(
                    event.stats, polling.stats,
                    "{name}/{}/checkpoint {index}: scheduler modes diverge",
                    mechanism.label
                );
                assert_eq!(event.ipc.to_bits(), polling.ipc.to_bits());
            }
        }
    }
}

/// Raw generated instruction: `(op selector, dest, src1, addr selector,
/// value selector, branch taken)`.
type RawInst = (u8, u8, u8, u64, u64, bool);

/// Decodes a raw tuple into an instruction with deliberately high value
/// redundancy (values drawn from a pool of 8) so distance/value/zero
/// prediction fire — and mispredict — frequently, exercising the squash and
/// replay paths of both schedulers.
fn decode(seq: u64, raw: RawInst) -> DynInst {
    let (op_sel, dest, src1, addr_sel, value_sel, taken) = raw;
    let pc = 0x40_0000 + (seq % 16) * 4;
    let dest = ArchReg::int(dest % 6);
    let src = ArchReg::int(src1 % 6);
    let addr = 0x1000_0000 + (addr_sel % 12) * 8;
    let value = value_sel % 8;
    match op_sel % 10 {
        0..=3 => {
            DynInstBuilder::new(seq, pc, OpClass::IntAlu).dest(dest).src(src).result(value).build()
        }
        4 => DynInstBuilder::new(seq, pc, OpClass::Move).dest(dest).src(src).result(value).build(),
        5 | 6 => DynInstBuilder::new(seq, pc, OpClass::Load)
            .dest(dest)
            .result(value)
            .mem(addr, 8)
            .build(),
        7 => {
            DynInstBuilder::new(seq, pc, OpClass::Store).src(src).result(value).mem(addr, 8).build()
        }
        8 => DynInstBuilder::new(seq, pc, OpClass::Branch)
            .branch(BranchKind::Conditional, taken, pc + 4)
            .build(),
        _ => DynInstBuilder::new(seq, pc, OpClass::ZeroIdiom).dest(dest).result(0).build(),
    }
}

fn simulate_with_config(insts: &[DynInst], config: CoreConfig) -> SimStats {
    let engine = RsepEngine::new(MechanismConfig::rsep_plus_vp());
    let mut core = Core::new(config, engine);
    let mut trace = insts.iter().cloned();
    core.run(&mut trace, insts.len() as u64).expect("random traces must not wedge");
    core.take_stats()
}

fn simulate_with_engine(insts: &[DynInst], scheduler: SchedulerKind) -> SimStats {
    simulate_with_config(insts, config_with(scheduler))
}

proptest! {
    /// Random redundant DAGs under RSEP + VP: identical retirement (full
    /// commit) and bit-identical statistics in both scheduler modes.
    #[test]
    fn schedulers_agree_under_speculative_squashes(
        raws in collection::vec(
            (0u8..10, 0u8..6, 0u8..6, 0u64..12, 0u64..8, proptest::prelude::any::<bool>()),
            30..200,
        )
    ) {
        let insts: Vec<DynInst> =
            raws.iter().enumerate().map(|(i, &raw)| decode(i as u64, raw)).collect();
        let event = simulate_with_engine(&insts, SchedulerKind::EventDriven);
        let polling = simulate_with_engine(&insts, SchedulerKind::Polling);
        prop_assert_eq!(event.committed, insts.len() as u64);
        prop_assert_eq!(&event, &polling);
    }
}

/// Regression test for the squash path: drive a core whose speculation
/// engine mispredicts constantly (trained value predictions broken on
/// purpose), so commit-time squashes fire while earlier squashes are still
/// replaying, and verify between run segments that the free lists never
/// contain duplicates — i.e. pregs drained from `fetch_queue`/`replay` are
/// never double-freed against the ones `engine.on_squash` returns.
#[test]
fn squash_mid_replay_never_double_frees_registers() {
    let engine = RsepEngine::new(MechanismConfig::rsep_plus_vp());
    let mut core = Core::new(config_with(SchedulerKind::EventDriven), engine);
    // Alternate long trained runs with value flips: predictors gain
    // confidence, then mispredict, squashing mid-stream. Branches keep the
    // fetch queue and replay buffer populated when the squash hits.
    let mut insts: Vec<DynInst> = Vec::new();
    let mut seq = 0u64;
    // The predictors' probabilistic confidence counters (3 bits, 1/36
    // increment probability) need ~250 correct trainings to saturate, so
    // the trained stretches must be long for predictions to engage at all.
    for block in 0..12_000u64 {
        for i in 0..8u64 {
            let pc = 0x40_0000 + i * 4;
            // Long trained stretches, then a value flip once confidence has
            // built up.
            let value = if block % 1_500 == 1_499 { 1_000_000 + block } else { i };
            match i % 4 {
                0..=1 => insts.push(
                    DynInstBuilder::new(seq, pc, OpClass::IntAlu)
                        .dest(ArchReg::int((i % 4) as u8))
                        .src(ArchReg::int(((i + 1) % 4) as u8))
                        .result(value)
                        .build(),
                ),
                2 => insts.push(
                    DynInstBuilder::new(seq, pc, OpClass::Load)
                        .dest(ArchReg::int(4))
                        .result(value)
                        .mem(0x2000_0000 + (block % 8) * 8, 8)
                        .build(),
                ),
                _ => insts.push(
                    DynInstBuilder::new(seq, pc, OpClass::Branch)
                        .branch(BranchKind::Conditional, block % 3 == 0, pc + 4)
                        .build(),
                ),
            }
            seq += 1;
        }
    }
    let total = insts.len() as u64;
    let mut trace = insts.into_iter();
    let mut committed = 0u64;
    while committed < total {
        let done = core.run(&mut trace, 64.min(total - committed)).expect("no deadlock");
        // The invariant under test: after any mixture of squash, replay and
        // re-squash, no physical register sits on a free list twice.
        core.validate_invariants();
        if done == committed {
            break; // trace drained
        }
        committed = done;
    }
    let stats = core.take_stats();
    assert_eq!(stats.committed, total);
    assert!(
        stats.prediction_squashes > 0,
        "the trace must actually provoke commit-time squashes for this test to bite"
    );
}

//! Property-based tests on the RSEP hardware structures: the ISRB
//! reference-counting protocol and the commit FIFO history.

use proptest::prelude::*;
use rsep_core::{FifoHistory, FifoHistoryConfig, Isrb, IsrbConfig};
use rsep_isa::{PhysReg, RegClass};

proptest! {
    /// ISRB protocol invariant: for a register shared `n` times (all sharers
    /// committed), the register is freed exactly on the `n + 1`-th committed
    /// de-reference and never before.
    #[test]
    fn isrb_frees_after_the_last_dereference(shares in 1usize..8) {
        let mut isrb = Isrb::new(IsrbConfig { entries: 32, counter_bits: 8 });
        let preg = PhysReg::new(RegClass::Int, 17);
        for seq in 0..shares as u64 {
            prop_assert!(isrb.try_share(preg, seq));
            isrb.on_sharer_commit(seq);
        }
        // The first `shares` de-references must not free the register.
        for _ in 0..shares {
            prop_assert!(!isrb.on_release(preg));
        }
        // The final de-reference frees it.
        prop_assert!(isrb.on_release(preg));
        prop_assert_eq!(isrb.occupancy(), 0);
    }

    /// Squashing every speculative sharer leaves the buffer consistent: a
    /// subsequent single de-reference (the provider's own mapping) frees the
    /// register.
    #[test]
    fn isrb_squash_rolls_back_all_speculative_references(shares in 1usize..8) {
        let mut isrb = Isrb::new(IsrbConfig { entries: 32, counter_bits: 8 });
        let preg = PhysReg::new(RegClass::Int, 3);
        for seq in 0..shares as u64 {
            prop_assert!(isrb.try_share(preg, seq));
        }
        let freed = isrb.on_squash(0);
        prop_assert!(freed.is_empty());
        prop_assert!(isrb.on_release(preg));
    }

    /// The ISRB never exceeds its configured capacity, regardless of the
    /// request stream.
    #[test]
    fn isrb_occupancy_is_bounded(requests in proptest::collection::vec((0u16..64, 0u64..1000), 1..200),
                                 capacity in 1usize..16) {
        let mut isrb = Isrb::new(IsrbConfig { entries: capacity, counter_bits: 6 });
        for (reg, seq) in requests {
            let _ = isrb.try_share(PhysReg::new(RegClass::Int, reg), seq);
            prop_assert!(isrb.occupancy() <= capacity);
        }
    }

    /// FIFO history: a producer pushed within the last `capacity` producers
    /// is always found, and the reported distance is exact.
    #[test]
    fn fifo_history_finds_recent_producers(gap in 1u64..100, value in any::<u64>()) {
        let mut fifo = FifoHistory::new(FifoHistoryConfig { capacity: 128, hash_bits: 14, csn_bits: 10 });
        fifo.push(1000, value);
        // Push unrelated producers in between (odd values that cannot hash
        // equal to themselves being irrelevant — distance must still point
        // at the most recent equal-hash producer or closer).
        for i in 0..gap.min(100) {
            fifo.push(1001 + i, value ^ (0xdead_beef << 1) ^ i);
        }
        let csn = 1001 + gap.min(100);
        let m = fifo.find_pair(csn, value, None);
        prop_assert!(m.is_some());
        prop_assert!(m.unwrap().distance <= (csn - 1000) as u32);
    }

    /// FIFO history: the propagated predicted distance is preferred whenever
    /// it corresponds to a real match.
    #[test]
    fn fifo_history_prefers_the_predicted_distance(extra in 1u64..50, value in any::<u64>()) {
        let mut fifo = FifoHistory::new(FifoHistoryConfig::ideal());
        fifo.push(100, value);          // older instance, distance = extra + 10
        fifo.push(100 + extra, value);  // most recent instance, distance = 10
        let csn = 110 + extra;
        let predicted = (csn - 100) as u32;
        let m = fifo.find_pair(csn, value, Some(predicted)).unwrap();
        prop_assert!(m.matched_prediction);
        prop_assert_eq!(m.distance, predicted);
    }

    /// FIFO history never remembers more than its capacity.
    #[test]
    fn fifo_history_capacity_is_bounded(pushes in 1usize..500, capacity in 1usize..64) {
        let mut fifo = FifoHistory::new(FifoHistoryConfig { capacity, hash_bits: 14, csn_bits: 10 });
        for i in 0..pushes {
            fifo.push(i as u64, i as u64);
            prop_assert!(fifo.len() <= capacity);
        }
    }
}

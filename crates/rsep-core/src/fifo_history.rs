//! Commit-time FIFO history and pairing (Section IV-B2 / IV-B3 / IV-D2).
//!
//! At commit, the hashes of retiring register-producing instructions are
//! compared against the hashes of the last `capacity` retired producers to
//! discover pairs that produced the same result; the resulting instruction
//! distance (difference of commit sequence numbers) trains the distance
//! predictor. The structure is a FIFO (implemented here as a ring buffer),
//! the *explicit IDist* variant of Section IV-D2a: every entry carries a
//! commit sequence number so the distance is computed with a subtraction.
//!
//! When a distance prediction is being propagated with the instruction, the
//! match that corresponds to the predicted distance is preferred over the
//! most recent one (Section VI-A2: this filters "per chance" matches).
//!
//! Commit-time sampling (Section IV-B3) limits the number of comparisons:
//! only one randomly chosen committing instruction per cycle searches the
//! history; instructions whose confidence already exceeds the
//! `start_train` threshold are trained through the validation path instead.

use rsep_isa::FoldHash;
use rsep_predictors::Lfsr;
use std::collections::VecDeque;

/// Configuration of the FIFO history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoHistoryConfig {
    /// Number of retired producers remembered (128 in Section VI-B; the
    /// ideal configuration uses a history much larger than the ROB).
    pub capacity: usize,
    /// Hash width in bits (14 in Section IV-A).
    pub hash_bits: u8,
    /// Width of the stored commit sequence numbers (10 bits in the paper's
    /// sizing; only used for storage accounting — the model keeps full
    /// sequence numbers and computes distances exactly).
    pub csn_bits: u8,
}

impl FifoHistoryConfig {
    /// The realistic configuration of Section VI-B: 128 entries, 14-bit
    /// hashes, 10-bit CSNs (384 bytes).
    pub fn realistic() -> FifoHistoryConfig {
        FifoHistoryConfig { capacity: 128, hash_bits: 14, csn_bits: 10 }
    }

    /// A history much larger than the ROB (the "ideal" configuration of
    /// Section VI-A1).
    pub fn ideal() -> FifoHistoryConfig {
        FifoHistoryConfig { capacity: 2048, hash_bits: 14, csn_bits: 12 }
    }

    /// Storage in bits (hash + CSN per entry).
    pub fn storage_bits(&self) -> u64 {
        self.capacity as u64 * (u64::from(self.hash_bits) + u64::from(self.csn_bits))
    }

    /// Number of hash comparators needed for an unsampled implementation at
    /// the given commit width (Section IV-B2's 2076-comparator example).
    pub fn comparators(&self, commit_width: usize) -> u64 {
        let within_group = (commit_width * (commit_width - 1) / 2) as u64;
        self.capacity as u64 * commit_width as u64 + within_group
    }
}

impl rsep_isa::Fingerprint for FifoHistoryConfig {
    fn fingerprint(&self, h: &mut rsep_isa::Fnv) {
        h.write_str("FifoHistoryConfig");
        self.capacity.fingerprint(h);
        self.hash_bits.fingerprint(h);
        self.csn_bits.fingerprint(h);
    }
}

/// One record of the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HistoryEntry {
    csn: u64,
    hash: u16,
}

/// Result of a history search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairMatch {
    /// Instruction distance (difference of commit sequence numbers).
    pub distance: u32,
    /// Whether the match corresponds to the propagated predicted distance.
    pub matched_prediction: bool,
}

/// Commit-time FIFO history.
#[derive(Debug)]
pub struct FifoHistory {
    config: FifoHistoryConfig,
    hash: FoldHash,
    entries: VecDeque<HistoryEntry>,
    lfsr: Lfsr,
    /// Committing producers seen in the current cycle (for sampling).
    seen_this_cycle: u32,
    current_cycle: u64,
    stats: FifoHistoryStats,
}

/// Statistics of the FIFO history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoHistoryStats {
    /// Searches performed.
    pub searches: u64,
    /// Searches that found at least one matching hash.
    pub matches: u64,
    /// Searches whose best match was the propagated predicted distance.
    pub predicted_distance_matches: u64,
    /// Producers pushed into the history.
    pub pushes: u64,
    /// Committing producers skipped because of sampling.
    pub sampled_out: u64,
}

impl FifoHistory {
    /// Creates a FIFO history.
    pub fn new(config: FifoHistoryConfig) -> FifoHistory {
        FifoHistory {
            config,
            hash: FoldHash::new(config.hash_bits),
            entries: VecDeque::with_capacity(config.capacity.min(1 << 16)),
            lfsr: Lfsr::new(0xf1f0_0123_4567),
            seen_this_cycle: 0,
            current_cycle: u64::MAX,
            stats: FifoHistoryStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> FifoHistoryConfig {
        self.config
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> FifoHistoryStats {
        self.stats
    }

    /// Current number of remembered producers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the history is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Decides whether a committing producer may search the history this
    /// cycle under commit-time sampling: only the first randomly retained
    /// producer of each cycle searches.
    ///
    /// `cycle` is the commit cycle; `commit_width` scales the retention
    /// probability so on average one producer per full-width commit group
    /// searches.
    pub fn admit_sampled(&mut self, cycle: u64, commit_width: u32) -> bool {
        if cycle != self.current_cycle {
            self.current_cycle = cycle;
            self.seen_this_cycle = 0;
        }
        self.seen_this_cycle += 1;
        if self.seen_this_cycle > 1 {
            self.stats.sampled_out += 1;
            return false;
        }
        let _ = commit_width;
        true
    }

    /// Searches the history for an older producer with the same result
    /// hash. `predicted_distance`, when provided, is preferred over the
    /// most recent match.
    pub fn find_pair(
        &mut self,
        csn: u64,
        result: u64,
        predicted_distance: Option<u32>,
    ) -> Option<PairMatch> {
        self.stats.searches += 1;
        let h = self.hash.hash(result);
        let mut best: Option<PairMatch> = None;
        // Iterate youngest (closest) first so the default match is the most
        // recent older instruction, as in the paper.
        for entry in self.entries.iter().rev() {
            if entry.hash != h {
                continue;
            }
            let distance = (csn - entry.csn) as u32;
            if best.is_none() {
                best = Some(PairMatch { distance, matched_prediction: false });
            }
            if predicted_distance == Some(distance) {
                best = Some(PairMatch { distance, matched_prediction: true });
                break;
            }
        }
        if let Some(m) = best {
            self.stats.matches += 1;
            if m.matched_prediction {
                self.stats.predicted_distance_matches += 1;
            }
        }
        best
    }

    /// Pushes a retiring producer into the history.
    pub fn push(&mut self, csn: u64, result: u64) {
        self.stats.pushes += 1;
        let h = self.hash.hash(result);
        if self.entries.len() >= self.config.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(HistoryEntry { csn, hash: h });
    }

    /// Randomly selects one of `group` committing producers (sampling as
    /// described in Section IV-B3); exposed for the harness's comparator
    /// accounting experiments.
    pub fn pick_random(&mut self, group: u32) -> u32 {
        if group <= 1 {
            0
        } else {
            (self.lfsr.next_u64() % u64::from(group)) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_paper_sizing() {
        // Section VI-B: 128 entries × (14-bit hash + 10-bit CSN) = 384 B.
        let bytes = FifoHistoryConfig::realistic().storage_bits() / 8;
        assert_eq!(bytes, 384);
    }

    #[test]
    fn comparator_count_matches_section_iv_b2() {
        // 256 entries, commit width 8: 2048 + 28 = 2076 comparators.
        let cfg = FifoHistoryConfig { capacity: 256, hash_bits: 14, csn_bits: 10 };
        assert_eq!(cfg.comparators(8), 2076);
    }

    #[test]
    fn finds_the_most_recent_matching_producer() {
        let mut fifo = FifoHistory::new(FifoHistoryConfig::realistic());
        fifo.push(10, 0xaaaa);
        fifo.push(20, 0xbbbb);
        fifo.push(30, 0xaaaa);
        let m = fifo.find_pair(40, 0xaaaa, None).unwrap();
        assert_eq!(m.distance, 10); // most recent producer of 0xaaaa is CSN 30
        assert!(!m.matched_prediction);
    }

    #[test]
    fn prefers_the_predicted_distance_over_the_most_recent_match() {
        let mut fifo = FifoHistory::new(FifoHistoryConfig::realistic());
        fifo.push(10, 0xaaaa);
        fifo.push(30, 0xaaaa);
        let m = fifo.find_pair(40, 0xaaaa, Some(30)).unwrap();
        assert_eq!(m.distance, 30);
        assert!(m.matched_prediction);
        assert_eq!(fifo.stats().predicted_distance_matches, 1);
    }

    #[test]
    fn no_match_for_unseen_values() {
        let mut fifo = FifoHistory::new(FifoHistoryConfig::realistic());
        fifo.push(1, 123);
        assert!(fifo.find_pair(2, 456, None).is_none());
        assert_eq!(fifo.stats().matches, 0);
    }

    #[test]
    fn capacity_is_bounded() {
        let cfg = FifoHistoryConfig { capacity: 4, hash_bits: 14, csn_bits: 10 };
        let mut fifo = FifoHistory::new(cfg);
        for i in 0..10u64 {
            fifo.push(i, i);
        }
        assert_eq!(fifo.len(), 4);
        // The oldest entries fell out: value 0 is no longer matchable.
        assert!(fifo.find_pair(20, 0, None).is_none());
        assert!(fifo.find_pair(20, 9, None).is_some());
    }

    #[test]
    fn sampling_admits_one_producer_per_cycle() {
        let mut fifo = FifoHistory::new(FifoHistoryConfig::realistic());
        assert!(fifo.admit_sampled(100, 8));
        assert!(!fifo.admit_sampled(100, 8));
        assert!(!fifo.admit_sampled(100, 8));
        assert!(fifo.admit_sampled(101, 8));
        assert_eq!(fifo.stats().sampled_out, 2);
    }

    #[test]
    fn hash_collisions_can_cause_false_matches() {
        // With a 1-bit hash everything collides; the history reports a
        // match even for unequal values. This is exactly the accuracy /
        // complexity trade-off of Section IV-A, resolved by validation.
        let cfg = FifoHistoryConfig { capacity: 16, hash_bits: 1, csn_bits: 10 };
        let mut fifo = FifoHistory::new(cfg);
        fifo.push(1, 2);
        assert!(fifo.find_pair(2, 4, None).is_some());
    }

    #[test]
    fn pick_random_is_in_range() {
        let mut fifo = FifoHistory::new(FifoHistoryConfig::realistic());
        for _ in 0..100 {
            assert!(fifo.pick_random(8) < 8);
        }
        assert_eq!(fifo.pick_random(1), 0);
    }
}

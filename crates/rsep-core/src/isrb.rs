//! Inflight Shared Registers Buffer (ISRB), Section IV-E2.
//!
//! RSEP shares a physical register between the provider instruction and the
//! predicted instruction, so registers can no longer be freed as soon as
//! their architectural mapping is overwritten: the ISRB reference-counts
//! shared registers. It is a small fully-associative buffer (24 entries in
//! the paper's final configuration) whose entries hold two counters:
//! `referenced` (number of extra references, including speculative ones) and
//! `committed` (number of committed de-references). A register is freed when
//! `committed` exceeds `referenced`. If the ISRB is full, no sharing takes
//! place for the new pair.

use rsep_isa::PhysReg;

/// One ISRB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IsrbEntry {
    preg: PhysReg,
    /// Number of extra references to the register (sharers), including
    /// speculative ones.
    referenced: u32,
    /// Number of committed de-references observed so far.
    committed: u32,
}

/// A speculative (not yet committed) sharing reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingShare {
    seq: u64,
    preg: PhysReg,
}

/// Configuration of the ISRB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsrbConfig {
    /// Number of entries (24 in Section VI-A3).
    pub entries: usize,
    /// Width of each counter in bits (6 in Section VI-A3).
    pub counter_bits: u8,
}

impl IsrbConfig {
    /// The paper's final configuration: 24 entries of two 6-bit counters.
    pub fn paper() -> IsrbConfig {
        IsrbConfig { entries: 24, counter_bits: 6 }
    }

    /// An effectively unlimited ISRB (used for the ideal configuration).
    pub fn unlimited() -> IsrbConfig {
        IsrbConfig { entries: usize::MAX, counter_bits: 16 }
    }

    /// Storage in bits: two counters plus a physical register tag per entry
    /// (the 63 bytes reported in Section VI-B for 24 entries).
    pub fn storage_bits(&self) -> u64 {
        if self.entries == usize::MAX {
            return 0;
        }
        let preg_tag_bits = 9; // 235 < 512 physical registers per class + class bit
        self.entries as u64 * (2 * u64::from(self.counter_bits) + preg_tag_bits)
    }

    fn counter_max(&self) -> u32 {
        if self.counter_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.counter_bits) - 1
        }
    }
}

impl rsep_isa::Fingerprint for IsrbConfig {
    fn fingerprint(&self, h: &mut rsep_isa::Fnv) {
        h.write_str("IsrbConfig");
        self.entries.fingerprint(h);
        self.counter_bits.fingerprint(h);
    }
}

/// Statistics of the ISRB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsrbStats {
    /// Sharing requests that were accepted.
    pub shares_accepted: u64,
    /// Sharing requests rejected because the buffer was full.
    pub shares_rejected_full: u64,
    /// Registers freed through the ISRB protocol.
    pub registers_freed: u64,
    /// Maximum occupancy observed.
    pub max_occupancy: usize,
}

/// The Inflight Shared Registers Buffer.
#[derive(Debug)]
pub struct Isrb {
    config: IsrbConfig,
    entries: Vec<IsrbEntry>,
    pending: Vec<PendingShare>,
    stats: IsrbStats,
}

impl Isrb {
    /// Creates an ISRB with the given configuration.
    pub fn new(config: IsrbConfig) -> Isrb {
        Isrb { config, entries: Vec::new(), pending: Vec::new(), stats: IsrbStats::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> IsrbConfig {
        self.config
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> IsrbStats {
        self.stats
    }

    /// Current number of tracked registers.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Attempts to record that the instruction with sequence number `seq`
    /// shares `preg`. Returns `false` (no sharing) when the buffer is full
    /// or the entry's counter would overflow.
    pub fn try_share(&mut self, preg: PhysReg, seq: u64) -> bool {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.preg == preg) {
            if entry.referenced >= self.config.counter_max() {
                self.stats.shares_rejected_full += 1;
                return false;
            }
            entry.referenced += 1;
        } else {
            if self.entries.len() >= self.config.entries {
                self.stats.shares_rejected_full += 1;
                return false;
            }
            self.entries.push(IsrbEntry { preg, referenced: 1, committed: 0 });
            self.stats.max_occupancy = self.stats.max_occupancy.max(self.entries.len());
        }
        self.pending.push(PendingShare { seq, preg });
        self.stats.shares_accepted += 1;
        true
    }

    /// Notifies the ISRB that the sharing instruction `seq` committed (its
    /// reference is no longer speculative).
    pub fn on_sharer_commit(&mut self, seq: u64) {
        self.pending.retain(|p| p.seq != seq);
    }

    /// Called when a committing instruction overwrites the architectural
    /// mapping previously held by `preg`. Returns `true` when the register
    /// can really be freed.
    pub fn on_release(&mut self, preg: PhysReg) -> bool {
        let Some(idx) = self.entries.iter().position(|e| e.preg == preg) else {
            // Not shared: the register frees normally.
            return true;
        };
        let entry = &mut self.entries[idx];
        entry.committed += 1;
        if entry.committed > entry.referenced {
            self.entries.swap_remove(idx);
            self.stats.registers_freed += 1;
            true
        } else {
            false
        }
    }

    /// Rolls back all speculative references made by instructions with
    /// sequence number `>= from_seq` (checkpoint recovery / pipeline
    /// squash). Registers whose counters now satisfy the free condition are
    /// returned so the caller can release them.
    pub fn on_squash(&mut self, from_seq: u64) -> Vec<PhysReg> {
        let mut freed = Vec::new();
        let squashed: Vec<PendingShare> =
            self.pending.iter().copied().filter(|p| p.seq >= from_seq).collect();
        self.pending.retain(|p| p.seq < from_seq);
        for share in squashed {
            if let Some(idx) = self.entries.iter().position(|e| e.preg == share.preg) {
                let entry = &mut self.entries[idx];
                entry.referenced = entry.referenced.saturating_sub(1);
                if entry.committed > entry.referenced {
                    freed.push(entry.preg);
                    self.entries.swap_remove(idx);
                    self.stats.registers_freed += 1;
                }
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsep_isa::RegClass;

    fn preg(i: u16) -> PhysReg {
        PhysReg::new(RegClass::Int, i)
    }

    #[test]
    fn paper_config_storage_is_about_63_bytes() {
        let bits = IsrbConfig::paper().storage_bits();
        let bytes = bits as f64 / 8.0;
        assert!((60.0..=68.0).contains(&bytes), "ISRB storage {bytes} bytes, paper says 63");
    }

    #[test]
    fn single_share_frees_on_second_release() {
        let mut isrb = Isrb::new(IsrbConfig::paper());
        assert!(isrb.try_share(preg(7), 100));
        isrb.on_sharer_commit(100);
        // First de-reference (committed == referenced): keep.
        assert!(!isrb.on_release(preg(7)));
        // Second de-reference (committed > referenced): free.
        assert!(isrb.on_release(preg(7)));
        assert_eq!(isrb.occupancy(), 0);
        assert_eq!(isrb.stats().registers_freed, 1);
    }

    #[test]
    fn two_sharers_need_three_releases() {
        let mut isrb = Isrb::new(IsrbConfig::paper());
        assert!(isrb.try_share(preg(3), 1));
        assert!(isrb.try_share(preg(3), 2));
        assert!(!isrb.on_release(preg(3)));
        assert!(!isrb.on_release(preg(3)));
        assert!(isrb.on_release(preg(3)));
    }

    #[test]
    fn unshared_registers_free_immediately() {
        let mut isrb = Isrb::new(IsrbConfig::paper());
        assert!(isrb.on_release(preg(9)));
    }

    #[test]
    fn full_buffer_rejects_new_pairs() {
        let mut isrb = Isrb::new(IsrbConfig { entries: 2, counter_bits: 6 });
        assert!(isrb.try_share(preg(1), 1));
        assert!(isrb.try_share(preg(2), 2));
        assert!(!isrb.try_share(preg(3), 3));
        assert_eq!(isrb.stats().shares_rejected_full, 1);
        // Sharing an already-tracked register still works.
        assert!(isrb.try_share(preg(1), 4));
    }

    #[test]
    fn squash_rolls_back_speculative_references() {
        let mut isrb = Isrb::new(IsrbConfig::paper());
        assert!(isrb.try_share(preg(5), 10));
        // The provider's mapping is overwritten and commits before the
        // sharer does: committed == referenced, entry stays.
        assert!(!isrb.on_release(preg(5)));
        // The sharer is squashed: its reference is undone, and now
        // committed(1) > referenced(0), so the register frees.
        let freed = isrb.on_squash(10);
        assert_eq!(freed, vec![preg(5)]);
        assert_eq!(isrb.occupancy(), 0);
    }

    #[test]
    fn squash_only_affects_younger_sequences() {
        let mut isrb = Isrb::new(IsrbConfig::paper());
        assert!(isrb.try_share(preg(5), 10));
        assert!(isrb.try_share(preg(6), 20));
        let freed = isrb.on_squash(15);
        assert!(freed.is_empty());
        // preg 6's reference was rolled back; preg 5's remains.
        assert!(!isrb.on_release(preg(5)));
        assert!(isrb.on_release(preg(5)));
        // preg 6 now behaves as unshared (referenced rolled back to 0 but
        // entry still present until a release arrives).
        assert!(isrb.on_release(preg(6)));
    }

    #[test]
    fn committed_sharer_references_survive_squash() {
        let mut isrb = Isrb::new(IsrbConfig::paper());
        assert!(isrb.try_share(preg(8), 30));
        isrb.on_sharer_commit(30);
        let freed = isrb.on_squash(0);
        assert!(freed.is_empty());
        assert!(!isrb.on_release(preg(8)));
        assert!(isrb.on_release(preg(8)));
    }

    #[test]
    fn unlimited_config_never_rejects() {
        let mut isrb = Isrb::new(IsrbConfig::unlimited());
        for i in 0..10_000u16 {
            assert!(isrb.try_share(preg(i % 400), u64::from(i)));
        }
        assert_eq!(isrb.stats().shares_rejected_full, 0);
        assert_eq!(IsrbConfig::unlimited().storage_bits(), 0);
    }
}

//! Hash Register File (HRF), Section IV-A / IV-D1.
//!
//! Hashes of instruction results are computed at the output of the
//! functional units and written into a dedicated register file that mirrors
//! the PRF (one n-bit hash per physical register). The HRF is written at
//! writeback and read at commit, where the committing instructions' hashes
//! are compared against the FIFO history to discover equal-result pairs.
//!
//! In the trace-driven model the hash value itself is recomputed from the
//! result carried by the trace, so this type mostly provides the structure:
//! per-register storage, width configuration and the storage accounting the
//! paper uses to argue the HRF costs less than 5% of the PRF.

use rsep_isa::{FoldHash, PhysReg, RegClass};

/// Hash Register File.
#[derive(Debug)]
pub struct HashRegFile {
    hash: FoldHash,
    int: Vec<u16>,
    fp: Vec<u16>,
}

impl HashRegFile {
    /// Creates an HRF mirroring PRFs of the given sizes, using `hash`.
    pub fn new(hash: FoldHash, int_regs: usize, fp_regs: usize) -> HashRegFile {
        HashRegFile { hash, int: vec![0; int_regs], fp: vec![0; fp_regs] }
    }

    /// The paper's configuration: 14-bit hashes mirroring 235 + 235
    /// physical registers.
    pub fn paper() -> HashRegFile {
        HashRegFile::new(FoldHash::paper_default(), 235, 235)
    }

    /// The hash function in use.
    pub fn hash_function(&self) -> FoldHash {
        self.hash
    }

    /// Writes the hash of `result` for `preg` (called at writeback).
    pub fn write(&mut self, preg: PhysReg, result: u64) -> u16 {
        let h = self.hash.hash(result);
        match preg.class() {
            RegClass::Int => self.int[preg.index() as usize] = h,
            RegClass::Fp => self.fp[preg.index() as usize] = h,
        }
        h
    }

    /// Reads the stored hash for `preg` (called at commit).
    pub fn read(&self, preg: PhysReg) -> u16 {
        match preg.class() {
            RegClass::Int => self.int[preg.index() as usize],
            RegClass::Fp => self.fp[preg.index() as usize],
        }
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        (self.int.len() + self.fp.len()) as u64 * u64::from(self.hash.width())
    }

    /// Ratio of HRF storage to the PRF storage it mirrors (64-bit
    /// registers). The paper expects well under 5% of PRF *area*; storage is
    /// a lower bound for that argument.
    pub fn storage_ratio_vs_prf(&self) -> f64 {
        self.storage_bits() as f64 / ((self.int.len() + self.fp.len()) as f64 * 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut hrf = HashRegFile::paper();
        let p = PhysReg::new(RegClass::Int, 17);
        let h = hrf.write(p, 0xdead_beef_1234);
        assert_eq!(hrf.read(p), h);
        let q = PhysReg::new(RegClass::Fp, 17);
        assert_eq!(hrf.read(q), 0, "distinct class must not alias");
    }

    #[test]
    fn equal_results_have_equal_hashes() {
        let mut hrf = HashRegFile::paper();
        let a = hrf.write(PhysReg::new(RegClass::Int, 1), 42);
        let b = hrf.write(PhysReg::new(RegClass::Fp, 3), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn storage_is_a_small_fraction_of_the_prf() {
        let hrf = HashRegFile::paper();
        assert_eq!(hrf.storage_bits(), (235 + 235) * 14);
        assert!(hrf.storage_ratio_vs_prf() < 0.25);
        assert_eq!(hrf.hash_function().width(), 14);
    }
}

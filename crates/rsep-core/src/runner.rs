//! Benchmark runner: profiles × mechanism configurations × checkpoints.
//!
//! This is the experiment methodology of Section V packaged as a function:
//! for one benchmark profile and one mechanism configuration, simulate the
//! requested checkpoints (warm-up then measurement), and report the
//! harmonic-mean IPC together with the merged coverage and accuracy
//! statistics. Speedups (Figures 4, 6, 7) are then ratios of these IPCs
//! against the baseline configuration.

use crate::config::MechanismConfig;
use crate::engine::RsepEngine;
use rsep_trace::{BenchmarkProfile, CheckpointSpec, TraceGenerator};
use rsep_uarch::{Core, CoreConfig, SimStats};

/// Result of running one benchmark under one mechanism configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Mechanism label.
    pub mechanism: String,
    /// Harmonic mean of the per-checkpoint IPCs (Section V).
    pub ipc: f64,
    /// Per-checkpoint IPCs.
    pub checkpoint_ipcs: Vec<f64>,
    /// Statistics merged over all checkpoints.
    pub stats: SimStats,
}

impl BenchmarkResult {
    /// Speedup of this result over a baseline result for the same
    /// benchmark.
    pub fn speedup_over(&self, baseline: &BenchmarkResult) -> f64 {
        if baseline.ipc == 0.0 {
            0.0
        } else {
            self.ipc / baseline.ipc
        }
    }
}

/// Harmonic mean of a slice of positive numbers.
fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().map(|v| if *v > 0.0 { 1.0 / v } else { 0.0 }).sum();
    if sum == 0.0 {
        0.0
    } else {
        values.len() as f64 / sum
    }
}

fn merge_stats(total: &mut SimStats, part: &SimStats) {
    total.cycles += part.cycles;
    total.committed += part.committed;
    total.committed_loads += part.committed_loads;
    total.committed_stores += part.committed_stores;
    total.committed_branches += part.committed_branches;
    total.branch_mispredictions += part.branch_mispredictions;
    total.prediction_squashes += part.prediction_squashes;
    total.correct_predictions += part.correct_predictions;
    total.incorrect_predictions += part.incorrect_predictions;
    total.eligible_instructions += part.eligible_instructions;
    total.prf_stall_cycles += part.prf_stall_cycles;
    total.queue_stall_cycles += part.queue_stall_cycles;
    total.validation_issues += part.validation_issues;
    total.validation_port_conflicts += part.validation_port_conflicts;
    total.rob_occupancy_sum += part.rob_occupancy_sum;
    total.coverage.zero_idiom_elim += part.coverage.zero_idiom_elim;
    total.coverage.move_elim += part.coverage.move_elim;
    total.coverage.zero_pred += part.coverage.zero_pred;
    total.coverage.load_zero_pred += part.coverage.load_zero_pred;
    total.coverage.dist_pred += part.coverage.dist_pred;
    total.coverage.load_dist_pred += part.coverage.load_dist_pred;
    total.coverage.value_pred += part.coverage.value_pred;
    total.coverage.load_value_pred += part.coverage.load_value_pred;
}

/// Runs one benchmark profile under one mechanism configuration.
///
/// Each checkpoint uses a fresh core (cold structures) warmed over
/// `spec.warmup` instructions before `spec.measure` instructions are
/// measured, mirroring the paper's methodology at a configurable scale.
pub fn run_benchmark(
    profile: &BenchmarkProfile,
    mechanism: &MechanismConfig,
    core_config: &CoreConfig,
    spec: CheckpointSpec,
    seed: u64,
) -> BenchmarkResult {
    let mut ipcs = Vec::with_capacity(spec.count);
    let mut merged = SimStats::default();
    let mut trace = TraceGenerator::new(profile, seed);
    for checkpoint in 0..spec.count {
        let engine = RsepEngine::new(mechanism.clone());
        let mut core = Core::new(core_config.clone(), Box::new(engine));
        core.run(&mut trace, spec.warmup);
        core.reset_stats();
        core.run(&mut trace, spec.measure);
        let stats = core.take_stats();
        ipcs.push(stats.ipc());
        merge_stats(&mut merged, &stats);
        let _ = checkpoint;
    }
    BenchmarkResult {
        benchmark: profile.name.to_string(),
        mechanism: mechanism.label.clone(),
        ipc: harmonic_mean(&ipcs),
        checkpoint_ipcs: ipcs,
        stats: merged,
    }
}

/// Runs a benchmark under the baseline and one or more mechanism
/// configurations and returns `(baseline, results)`.
pub fn run_comparison(
    profile: &BenchmarkProfile,
    mechanisms: &[MechanismConfig],
    core_config: &CoreConfig,
    spec: CheckpointSpec,
    seed: u64,
) -> (BenchmarkResult, Vec<BenchmarkResult>) {
    let baseline = run_benchmark(profile, &MechanismConfig::baseline(), core_config, spec, seed);
    let results = mechanisms
        .iter()
        .map(|m| run_benchmark(profile, m, core_config, spec, seed))
        .collect();
    (baseline, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> CheckpointSpec {
        CheckpointSpec::scaled(2, 1_000, 4_000)
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_run_produces_sane_ipc() {
        let profile = BenchmarkProfile::by_name("gcc").unwrap();
        let result = run_benchmark(
            &profile,
            &MechanismConfig::baseline(),
            &CoreConfig::small_test(),
            quick_spec(),
            3,
        );
        assert_eq!(result.checkpoint_ipcs.len(), 2);
        // The core may commit a few extra instructions past the target in
        // its final commit group.
        assert!(result.stats.committed >= 8_000 && result.stats.committed < 8_020);
        assert!(result.ipc > 0.1 && result.ipc < 8.0, "ipc = {}", result.ipc);
        assert_eq!(result.mechanism, "baseline");
        assert_eq!(result.benchmark, "gcc");
    }

    #[test]
    fn rsep_runs_and_reports_coverage_on_a_redundant_profile() {
        let profile = BenchmarkProfile::by_name("libquantum").unwrap();
        let spec = CheckpointSpec::scaled(1, 8_000, 15_000);
        let result = run_benchmark(
            &profile,
            &MechanismConfig::rsep_ideal(),
            &CoreConfig::small_test(),
            spec,
            3,
        );
        assert!(result.stats.coverage.total_dist_pred() > 0, "no distance predictions at all");
        assert!(
            result.stats.prediction_accuracy() > 0.95,
            "accuracy = {}",
            result.stats.prediction_accuracy()
        );
    }

    #[test]
    fn comparison_returns_one_result_per_mechanism() {
        let profile = BenchmarkProfile::by_name("hmmer").unwrap();
        let (baseline, results) = run_comparison(
            &profile,
            &[MechanismConfig::move_elim(), MechanismConfig::value_pred()],
            &CoreConfig::small_test(),
            CheckpointSpec::scaled(1, 500, 2_000),
            7,
        );
        assert_eq!(results.len(), 2);
        for r in &results {
            let speedup = r.speedup_over(&baseline);
            assert!(speedup > 0.5 && speedup < 2.0, "{}: speedup {speedup}", r.mechanism);
        }
    }
}

//! Benchmark runner: profiles × mechanism configurations × checkpoints.
//!
//! This is the experiment methodology of Section V packaged as functions:
//! for one benchmark profile and one mechanism configuration, simulate the
//! requested checkpoints (warm-up then measurement), and report the
//! harmonic-mean IPC together with the merged coverage and accuracy
//! statistics. Speedups (Figures 4, 6, 7) are then ratios of these IPCs
//! against the baseline configuration.
//!
//! Checkpoints are **independent**: checkpoint `i` simulates a fresh trace
//! seeded with [`checkpoint_seed`]`(seed, i)`, modelling the paper's
//! uniformly spaced checkpoints as distinct program regions. This is what
//! lets the `rsep-campaign` engine schedule individual
//! `(profile, mechanism, checkpoint)` cells across worker threads —
//! [`run_checkpoint`] — and then reassemble bit-identical
//! [`BenchmarkResult`]s at any thread count via
//! [`BenchmarkResult::from_checkpoints`].

use crate::config::MechanismConfig;
use crate::engine::RsepEngine;
use rsep_isa::DynInst;
use rsep_trace::{BenchmarkProfile, CheckpointSpec, TraceGenerator};
use rsep_uarch::{Core, CoreConfig, SimError, SimStats};

/// Result of running one benchmark under one mechanism configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Mechanism label.
    pub mechanism: String,
    /// Harmonic mean of the per-checkpoint IPCs (Section V).
    pub ipc: f64,
    /// Per-checkpoint IPCs.
    pub checkpoint_ipcs: Vec<f64>,
    /// Statistics merged over all checkpoints.
    pub stats: SimStats,
    /// Rendered errors of checkpoints whose simulation failed (wedged
    /// cells), in checkpoint order. Their IPC contributions are zero.
    pub failures: Vec<String>,
}

impl BenchmarkResult {
    /// Speedup of this result over a baseline result for the same
    /// benchmark.
    pub fn speedup_over(&self, baseline: &BenchmarkResult) -> f64 {
        if baseline.ipc == 0.0 {
            0.0
        } else {
            self.ipc / baseline.ipc
        }
    }

    /// Assembles a benchmark result from independently executed checkpoint
    /// cells. Checkpoints are sorted by index first, so the result is
    /// identical no matter in which order (or on which thread) the cells
    /// were executed.
    pub fn from_checkpoints(
        benchmark: impl Into<String>,
        mechanism: impl Into<String>,
        mut checkpoints: Vec<CheckpointResult>,
    ) -> BenchmarkResult {
        checkpoints.sort_by_key(|c| c.index);
        let mut merged = SimStats::default();
        let mut ipcs = Vec::with_capacity(checkpoints.len());
        let mut ok_ipcs = Vec::with_capacity(checkpoints.len());
        let mut failures = Vec::new();
        for c in &checkpoints {
            ipcs.push(c.ipc);
            merged.merge(&c.stats);
            match &c.error {
                Some(error) => failures.push(format!("checkpoint {}: {error}", c.index)),
                None => ok_ipcs.push(c.ipc),
            }
        }
        BenchmarkResult {
            benchmark: benchmark.into(),
            mechanism: mechanism.into(),
            // Failed checkpoints are excluded from the mean entirely: a
            // 0.0 entry would otherwise *raise* the harmonic mean (its
            // reciprocal is skipped but it still counts in the divisor),
            // overstating exactly the configurations that wedge.
            ipc: harmonic_mean(&ok_ipcs),
            checkpoint_ipcs: ipcs,
            stats: merged,
            failures,
        }
    }
}

/// Result of simulating a single checkpoint cell.
#[derive(Debug, Clone)]
pub struct CheckpointResult {
    /// Checkpoint index within its benchmark run (0-based).
    pub index: usize,
    /// IPC over the measured window.
    pub ipc: f64,
    /// Statistics of the measured window.
    pub stats: SimStats,
    /// Set when the cell's simulation failed (e.g. a wedged pipeline): the
    /// rendered [`SimError`]. A failed cell carries empty statistics and
    /// zero IPC; campaign runners record it in the result store and keep
    /// going instead of aborting the whole process.
    pub error: Option<String>,
}

impl CheckpointResult {
    /// A successfully simulated cell.
    pub fn ok(index: usize, stats: SimStats) -> CheckpointResult {
        CheckpointResult { index, ipc: stats.ipc(), stats, error: None }
    }

    /// A cell whose simulation failed.
    pub fn failed(index: usize, error: &SimError) -> CheckpointResult {
        CheckpointResult {
            index,
            ipc: 0.0,
            stats: SimStats::default(),
            error: Some(error.to_string()),
        }
    }

    /// Returns `true` when the cell simulated successfully.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Derives the trace seed of checkpoint `index` from the campaign seed.
///
/// The golden-ratio multiply decorrelates neighbouring campaign seeds before
/// the checkpoint offset is added, so checkpoint `i` of seed `s` never
/// collides with checkpoint `i + 1` of seed `s` or checkpoint `i` of
/// `s + 1` in practice.
pub fn checkpoint_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(index as u64)
}

/// Simulates one `(profile, mechanism, checkpoint)` cell: a fresh core
/// (cold structures) over a fresh sub-seeded trace, warmed for
/// `spec.warmup` instructions before `spec.measure` instructions are
/// measured.
///
/// The cell is a pure function of its arguments, which is what makes
/// campaign execution embarrassingly parallel.
pub fn run_checkpoint(
    profile: &BenchmarkProfile,
    mechanism: &MechanismConfig,
    core_config: &CoreConfig,
    spec: CheckpointSpec,
    seed: u64,
    index: usize,
) -> CheckpointResult {
    let mut trace = TraceGenerator::new(profile, checkpoint_seed(seed, index));
    run_checkpoint_on(&mut trace, mechanism, core_config, spec, index)
}

/// Simulates one checkpoint cell over an already-constructed instruction
/// stream — the warm-up/reset/measure protocol of [`run_checkpoint`]
/// without the generator construction, so the same cell can be driven
/// from a live [`TraceGenerator`] or a recorded trace file
/// (`rsep trace replay`). Feeding the identical stream produces
/// bit-identical results by construction.
pub fn run_checkpoint_on(
    trace: &mut impl Iterator<Item = DynInst>,
    mechanism: &MechanismConfig,
    core_config: &CoreConfig,
    spec: CheckpointSpec,
    index: usize,
) -> CheckpointResult {
    // By-value engine: the cell runs on `Core<RsepEngine>`, so every
    // per-branch / per-instruction engine hook is statically dispatched
    // and inlined into the pipeline loop.
    let engine = RsepEngine::new(mechanism.clone());
    let mut core = Core::new(core_config.clone(), engine);
    if let Err(e) = core.run(trace, spec.warmup) {
        return CheckpointResult::failed(index, &e);
    }
    core.reset_stats();
    if let Err(e) = core.run(trace, spec.measure) {
        return CheckpointResult::failed(index, &e);
    }
    let stats = core.take_stats();
    CheckpointResult::ok(index, stats)
}

/// Harmonic mean of a slice of positive numbers.
fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().map(|v| if *v > 0.0 { 1.0 / v } else { 0.0 }).sum();
    if sum == 0.0 {
        0.0
    } else {
        values.len() as f64 / sum
    }
}

/// Runs one benchmark profile under one mechanism configuration.
///
/// Each checkpoint is an independent [`run_checkpoint`] cell (fresh core,
/// fresh sub-seeded trace), mirroring the paper's methodology at a
/// configurable scale; results are identical to executing the same cells in
/// parallel and reassembling them with
/// [`BenchmarkResult::from_checkpoints`].
pub fn run_benchmark(
    profile: &BenchmarkProfile,
    mechanism: &MechanismConfig,
    core_config: &CoreConfig,
    spec: CheckpointSpec,
    seed: u64,
) -> BenchmarkResult {
    let checkpoints = (0..spec.count)
        .map(|index| run_checkpoint(profile, mechanism, core_config, spec, seed, index))
        .collect();
    BenchmarkResult::from_checkpoints(profile.name, mechanism.label.clone(), checkpoints)
}

/// Runs a benchmark under the baseline and one or more mechanism
/// configurations and returns `(baseline, results)`.
pub fn run_comparison(
    profile: &BenchmarkProfile,
    mechanisms: &[MechanismConfig],
    core_config: &CoreConfig,
    spec: CheckpointSpec,
    seed: u64,
) -> (BenchmarkResult, Vec<BenchmarkResult>) {
    let baseline = run_benchmark(profile, &MechanismConfig::baseline(), core_config, spec, seed);
    let results =
        mechanisms.iter().map(|m| run_benchmark(profile, m, core_config, spec, seed)).collect();
    (baseline, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> CheckpointSpec {
        CheckpointSpec::scaled(2, 1_000, 4_000)
    }

    #[test]
    fn checkpoint_seeds_are_distinct_and_deterministic() {
        assert_eq!(checkpoint_seed(42, 3), checkpoint_seed(42, 3));
        let seeds: Vec<u64> = (0..16).map(|i| checkpoint_seed(42, i)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_ne!(checkpoint_seed(1, 0), checkpoint_seed(2, 0));
    }

    #[test]
    fn cellwise_assembly_matches_the_serial_run() {
        let profile = BenchmarkProfile::by_name("mcf").unwrap();
        let mechanism = MechanismConfig::rsep_ideal();
        let config = CoreConfig::small_test();
        let spec = quick_spec();
        let serial = run_benchmark(&profile, &mechanism, &config, spec, 11);
        // Execute the same cells out of order and reassemble.
        let cells: Vec<CheckpointResult> = (0..spec.count)
            .rev()
            .map(|i| run_checkpoint(&profile, &mechanism, &config, spec, 11, i))
            .collect();
        let assembled =
            BenchmarkResult::from_checkpoints(profile.name, mechanism.label.clone(), cells);
        assert_eq!(serial.checkpoint_ipcs, assembled.checkpoint_ipcs);
        assert_eq!(serial.ipc.to_bits(), assembled.ipc.to_bits());
        assert_eq!(serial.stats, assembled.stats);
    }

    #[test]
    fn failed_checkpoints_do_not_inflate_the_harmonic_mean() {
        let ok = CheckpointResult::ok(
            0,
            SimStats { cycles: 1_000, committed: 2_000, ..SimStats::default() },
        );
        let failed = CheckpointResult::failed(
            1,
            &SimError::Deadlock {
                cycle: 100_000,
                last_commit_cycle: 0,
                rob_len: 0,
                iq_len: 0,
                engine: "test".into(),
            },
        );
        let result = BenchmarkResult::from_checkpoints("b", "m", vec![ok, failed]);
        // The surviving checkpoint's IPC, not 2× it (a 0.0 entry counted in
        // the divisor would report 2 / 0.5 = 4.0).
        assert!((result.ipc - 2.0).abs() < 1e-12, "ipc = {}", result.ipc);
        assert_eq!(result.checkpoint_ipcs, vec![2.0, 0.0]);
        assert_eq!(result.failures.len(), 1);
        assert!(result.failures[0].contains("pipeline deadlock"));
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_run_produces_sane_ipc() {
        let profile = BenchmarkProfile::by_name("gcc").unwrap();
        let result = run_benchmark(
            &profile,
            &MechanismConfig::baseline(),
            &CoreConfig::small_test(),
            quick_spec(),
            3,
        );
        assert_eq!(result.checkpoint_ipcs.len(), 2);
        // The core may commit a few extra instructions past the target in
        // its final commit group.
        assert!(result.stats.committed >= 8_000 && result.stats.committed < 8_020);
        assert!(result.ipc > 0.1 && result.ipc < 8.0, "ipc = {}", result.ipc);
        assert_eq!(result.mechanism, "baseline");
        assert_eq!(result.benchmark, "gcc");
    }

    #[test]
    fn rsep_runs_and_reports_coverage_on_a_redundant_profile() {
        let profile = BenchmarkProfile::by_name("libquantum").unwrap();
        let spec = CheckpointSpec::scaled(1, 8_000, 15_000);
        let result = run_benchmark(
            &profile,
            &MechanismConfig::rsep_ideal(),
            &CoreConfig::small_test(),
            spec,
            3,
        );
        assert!(result.stats.coverage.total_dist_pred() > 0, "no distance predictions at all");
        assert!(
            result.stats.prediction_accuracy() > 0.95,
            "accuracy = {}",
            result.stats.prediction_accuracy()
        );
    }

    #[test]
    fn comparison_returns_one_result_per_mechanism() {
        let profile = BenchmarkProfile::by_name("hmmer").unwrap();
        let (baseline, results) = run_comparison(
            &profile,
            &[MechanismConfig::move_elim(), MechanismConfig::value_pred()],
            &CoreConfig::small_test(),
            CheckpointSpec::scaled(1, 500, 2_000),
            7,
        );
        assert_eq!(results.len(), 2);
        for r in &results {
            let speedup = r.speedup_over(&baseline);
            assert!(speedup > 0.5 && speedup < 2.0, "{}: speedup {speedup}", r.mechanism);
        }
    }
}

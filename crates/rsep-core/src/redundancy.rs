//! Commit-time redundancy analysis (Figure 1 of the paper).
//!
//! Figure 1 measures, over committed instructions, how many produce a
//! result that is zero and how many produce a result that is already
//! present in the physical register file (i.e. equals the result of a
//! recent older instruction), separating loads from other
//! register-producing instructions. This analysis only needs the committed
//! value stream, so it runs directly on a trace without the cycle-level
//! core.

use rsep_isa::{DynInst, OpClass};
use std::collections::VecDeque;

/// Result of the Figure-1 analysis for one benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RedundancyReport {
    /// Committed instructions analysed.
    pub committed: u64,
    /// Loads whose result is zero (and are not zero idioms).
    pub zero_loads: u64,
    /// Other producers whose result is zero.
    pub zero_others: u64,
    /// Loads whose (non-zero) result is already live in the window.
    pub prf_loads: u64,
    /// Other producers whose (non-zero) result is already live in the
    /// window.
    pub prf_others: u64,
}

impl RedundancyReport {
    /// Fraction of committed instructions that are zero-producing loads.
    pub fn zero_load_fraction(&self) -> f64 {
        self.ratio(self.zero_loads)
    }

    /// Fraction of committed instructions that are zero-producing
    /// non-loads.
    pub fn zero_other_fraction(&self) -> f64 {
        self.ratio(self.zero_others)
    }

    /// Fraction of committed instructions that are loads whose result is
    /// already in the PRF.
    pub fn prf_load_fraction(&self) -> f64 {
        self.ratio(self.prf_loads)
    }

    /// Fraction of committed instructions that are non-loads whose result
    /// is already in the PRF.
    pub fn prf_other_fraction(&self) -> f64 {
        self.ratio(self.prf_others)
    }

    /// Total fraction covered by any of the four Figure-1 categories.
    pub fn total_fraction(&self) -> f64 {
        self.ratio(self.zero_loads + self.zero_others + self.prf_loads + self.prf_others)
    }

    /// Accumulates another checkpoint's counts into this one (used by the
    /// campaign engine to merge per-checkpoint redundancy cells; the merged
    /// fractions are then instruction-weighted averages).
    pub fn merge(&mut self, other: &RedundancyReport) {
        self.committed += other.committed;
        self.zero_loads += other.zero_loads;
        self.zero_others += other.zero_others;
        self.prf_loads += other.prf_loads;
        self.prf_others += other.prf_others;
    }

    fn ratio(&self, n: u64) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            n as f64 / self.committed as f64
        }
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundancyConfig {
    /// Number of recent register-producing instructions considered "live in
    /// the PRF". The paper resolves this at commit over the in-flight
    /// window; 192 matches the Table I ROB.
    pub window: usize,
}

impl Default for RedundancyConfig {
    fn default() -> Self {
        RedundancyConfig { window: 192 }
    }
}

/// Streaming Figure-1 analyzer.
#[derive(Debug)]
pub struct RedundancyAnalyzer {
    config: RedundancyConfig,
    recent: VecDeque<u64>,
    report: RedundancyReport,
}

impl RedundancyAnalyzer {
    /// Creates an analyzer.
    pub fn new(config: RedundancyConfig) -> RedundancyAnalyzer {
        RedundancyAnalyzer { config, recent: VecDeque::new(), report: RedundancyReport::default() }
    }

    /// Feeds one committed instruction.
    pub fn observe(&mut self, inst: &DynInst) {
        self.report.committed += 1;
        if !inst.produces_register() || inst.op == OpClass::ZeroIdiom {
            return;
        }
        let is_load = inst.op.is_load();
        if inst.result == 0 {
            if is_load {
                self.report.zero_loads += 1;
            } else {
                self.report.zero_others += 1;
            }
        } else if self.recent.contains(&inst.result) {
            if is_load {
                self.report.prf_loads += 1;
            } else {
                self.report.prf_others += 1;
            }
        }
        if self.recent.len() >= self.config.window {
            self.recent.pop_front();
        }
        self.recent.push_back(inst.result);
    }

    /// The report accumulated so far.
    pub fn report(&self) -> RedundancyReport {
        self.report
    }

    /// Convenience: analyses a whole trace.
    pub fn analyze<I: IntoIterator<Item = DynInst>>(
        config: RedundancyConfig,
        trace: I,
    ) -> RedundancyReport {
        let mut analyzer = RedundancyAnalyzer::new(config);
        for inst in trace {
            analyzer.observe(&inst);
        }
        analyzer.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsep_isa::ArchReg;
    use rsep_trace::{BenchmarkProfile, TraceGenerator};

    fn alu(seq: u64, result: u64) -> DynInst {
        DynInst::simple(seq, 0x400000 + seq * 4, OpClass::IntAlu, ArchReg::int(1), result)
    }

    #[test]
    fn zero_and_redundant_results_are_classified() {
        let trace = vec![
            alu(0, 5),
            alu(1, 0),                                                       // zero other
            alu(2, 5),                                                       // redundant other
            DynInst::simple(3, 0x40000c, OpClass::Load, ArchReg::int(2), 0), // zero load
            DynInst::simple(4, 0x400010, OpClass::Load, ArchReg::int(2), 5), // redundant load
            alu(5, 99),                                                      // neither
        ];
        let report = RedundancyAnalyzer::analyze(RedundancyConfig::default(), trace);
        assert_eq!(report.committed, 6);
        assert_eq!(report.zero_others, 1);
        assert_eq!(report.prf_others, 1);
        assert_eq!(report.zero_loads, 1);
        assert_eq!(report.prf_loads, 1);
        assert!((report.total_fraction() - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn window_bounds_the_lookback() {
        let mut trace = vec![alu(0, 123)];
        for i in 1..300u64 {
            trace.push(alu(i, 1_000_000 + i));
        }
        trace.push(alu(300, 123)); // producer fell out of a 192-entry window
        let report = RedundancyAnalyzer::analyze(RedundancyConfig { window: 192 }, trace.clone());
        assert_eq!(report.prf_others, 0);
        let wide = RedundancyAnalyzer::analyze(RedundancyConfig { window: 400 }, trace);
        assert_eq!(wide.prf_others, 1);
    }

    #[test]
    fn zero_idioms_and_non_producers_are_excluded() {
        let trace = vec![
            DynInst::simple(0, 0x400000, OpClass::ZeroIdiom, ArchReg::int(1), 0),
            rsep_isa::DynInstBuilder::new(1, 0x400004, OpClass::Store)
                .mem(0x1000, 8)
                .result(0)
                .build(),
        ];
        let report = RedundancyAnalyzer::analyze(RedundancyConfig::default(), trace);
        assert_eq!(report.committed, 2);
        assert_eq!(report.zero_others, 0);
        assert_eq!(report.zero_loads, 0);
    }

    #[test]
    fn synthetic_profiles_reproduce_the_figure1_shape() {
        let analyze = |name: &str| {
            let profile = BenchmarkProfile::by_name(name).unwrap();
            let trace = TraceGenerator::new(&profile, 17).take(40_000);
            RedundancyAnalyzer::analyze(RedundancyConfig::default(), trace)
        };
        let zeusmp = analyze("zeusmp");
        let gcc = analyze("gcc");
        let mcf = analyze("mcf");
        // zeusmp is one of the zero-heavy benchmarks in Figure 1.
        assert!(
            zeusmp.zero_load_fraction() + zeusmp.zero_other_fraction()
                > 2.0 * (gcc.zero_load_fraction() + gcc.zero_other_fraction()),
            "zeusmp {:.3} vs gcc {:.3}",
            zeusmp.zero_other_fraction(),
            gcc.zero_other_fraction()
        );
        // mcf's redundancy is load dominated.
        assert!(mcf.prf_load_fraction() > mcf.prf_other_fraction());
        // Most benchmarks have non-trivial "already in PRF" potential.
        assert!(mcf.total_fraction() > 0.10);
    }
}

//! Mechanism configurations and storage accounting.
//!
//! [`RsepConfig`] bundles every parameter of the equality-prediction
//! mechanism (distance predictor size, FIFO history depth, ISRB size,
//! validation policy, commit sampling) with the two named configurations
//! evaluated in the paper — *ideal* (Section VI-A1, 42.6 KB predictor,
//! history much larger than the ROB, unlimited ISRB, free validation) and
//! *realistic* (Section VI-B, 10.1 KB predictor, 128-entry history,
//! 24-entry ISRB, issue-twice validation, sampling threshold 63).
//!
//! [`MechanismConfig`] composes the five mechanisms compared in Figure 4:
//! zero prediction, move elimination, RSEP, value prediction and RSEP+VP.

use crate::fifo_history::FifoHistoryConfig;
use crate::isrb::IsrbConfig;
use rsep_predictors::{DistancePredictorConfig, DvtageConfig, ZeroPredictorConfig};
use rsep_uarch::ValidationKind;

/// Commit-time sampling parameters (Section IV-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Raw confidence value (`start_train`) above which an instruction is a
    /// *likely candidate* and keeps training through the validation path
    /// even when it loses the commit-time sampling lottery.
    ///
    /// The paper expresses thresholds (15, 63) on an effective 255-scale
    /// counter; with 3-bit probabilistic counters of denominator 36 those
    /// correspond approximately to raw values 1 and 2.
    pub start_train_raw: u8,
    /// The effective (255-scale) threshold, for reporting.
    pub start_train_effective: u32,
}

impl SamplingConfig {
    /// The threshold-63 configuration chosen in Section VI-A4.
    pub fn threshold_63() -> SamplingConfig {
        SamplingConfig { start_train_raw: 2, start_train_effective: 63 }
    }

    /// The threshold-15 configuration (shown to hurt bzip2).
    pub fn threshold_15() -> SamplingConfig {
        SamplingConfig { start_train_raw: 1, start_train_effective: 15 }
    }
}

/// Full configuration of the RSEP mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct RsepConfig {
    /// Distance predictor configuration.
    pub predictor: DistancePredictorConfig,
    /// FIFO history configuration.
    pub history: FifoHistoryConfig,
    /// ISRB configuration.
    pub isrb: IsrbConfig,
    /// Validation policy.
    pub validation: ValidationKind,
    /// Commit-time sampling (None = every committing producer searches the
    /// history).
    pub sampling: Option<SamplingConfig>,
    /// Bytes reserved for propagating predicted distances to commit
    /// (Section VI-B counts 224 B for this dedicated FIFO).
    pub distance_propagation_bytes: u64,
}

impl RsepConfig {
    /// The ideal configuration of Section VI-A1: large predictor, history
    /// much larger than the ROB, unlimited ISRB, free validation, no
    /// sampling.
    pub fn ideal() -> RsepConfig {
        RsepConfig {
            predictor: DistancePredictorConfig::ideal(),
            history: FifoHistoryConfig::ideal(),
            isrb: IsrbConfig::unlimited(),
            validation: ValidationKind::Free,
            sampling: None,
            distance_propagation_bytes: 224,
        }
    }

    /// The realistic configuration of Section VI-B: 10.1 KB predictor,
    /// 128-entry history, 24-entry ISRB, issue-twice (any FU) validation and
    /// sampling with threshold 63.
    pub fn realistic() -> RsepConfig {
        RsepConfig {
            predictor: DistancePredictorConfig::realistic(),
            history: FifoHistoryConfig::realistic(),
            isrb: IsrbConfig::paper(),
            validation: ValidationKind::AnyFu,
            sampling: Some(SamplingConfig::threshold_63()),
            distance_propagation_bytes: 224,
        }
    }

    /// Total storage in bytes (predictor + history + distance propagation +
    /// ISRB), the ≈10.8 KB figure of Section VI-B for the realistic
    /// configuration.
    pub fn storage_bytes(&self) -> f64 {
        self.predictor.storage_bits() as f64 / 8.0
            + self.history.storage_bits() as f64 / 8.0
            + self.distance_propagation_bytes as f64
            + self.isrb.storage_bits() as f64 / 8.0
    }

    /// Storage in kilobytes.
    pub fn storage_kb(&self) -> f64 {
        self.storage_bytes() / 1024.0
    }
}

/// Configuration of the value-prediction baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct VpConfig {
    /// D-VTAGE predictor configuration.
    pub predictor: DvtageConfig,
}

impl VpConfig {
    /// The paper's ≈256 KB D-VTAGE baseline.
    pub fn paper() -> VpConfig {
        VpConfig { predictor: DvtageConfig::paper_256kb() }
    }

    /// Storage in kilobytes.
    pub fn storage_kb(&self) -> f64 {
        self.predictor.storage_kb()
    }
}

/// Composition of the mechanisms studied in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismConfig {
    /// Human-readable label (used in reports).
    // lint: exempt(fingerprint-coverage, presentation-only; cached cells must be label-invariant; proven-by crates/rsep-campaign/tests/store.rs)
    pub label: String,
    /// Non-speculative zero-idiom elimination (part of the Table I baseline
    /// rename stage).
    pub zero_idiom_elim: bool,
    /// Move elimination (enabled alongside RSEP, Section IV-H1).
    pub move_elim: bool,
    /// Zero prediction (Section III).
    pub zero_pred: Option<ZeroPredictorConfig>,
    /// RSEP equality prediction.
    pub rsep: Option<RsepConfig>,
    /// Conventional value prediction (D-VTAGE).
    pub vp: Option<VpConfig>,
}

impl MechanismConfig {
    /// The baseline: zero-idiom elimination only (as in Table I).
    pub fn baseline() -> MechanismConfig {
        MechanismConfig {
            label: "baseline".into(),
            zero_idiom_elim: true,
            move_elim: false,
            zero_pred: None,
            rsep: None,
            vp: None,
        }
    }

    /// Zero prediction only (first bar of Figure 4).
    pub fn zero_pred() -> MechanismConfig {
        MechanismConfig {
            label: "zero-pred".into(),
            zero_pred: Some(ZeroPredictorConfig::default_config()),
            ..MechanismConfig::baseline()
        }
    }

    /// Move elimination only (second bar of Figure 4).
    pub fn move_elim() -> MechanismConfig {
        MechanismConfig {
            label: "move-elim".into(),
            move_elim: true,
            ..MechanismConfig::baseline()
        }
    }

    /// RSEP with the given configuration (move elimination included, as in
    /// the paper).
    pub fn rsep(config: RsepConfig) -> MechanismConfig {
        MechanismConfig {
            label: if config.sampling.is_some() || config.isrb.entries != usize::MAX {
                "rsep-realistic".into()
            } else {
                "rsep-ideal".into()
            },
            move_elim: true,
            rsep: Some(config),
            ..MechanismConfig::baseline()
        }
    }

    /// RSEP in its ideal configuration (third bar of Figure 4).
    pub fn rsep_ideal() -> MechanismConfig {
        MechanismConfig::rsep(RsepConfig::ideal())
    }

    /// RSEP in its realistic configuration (Figure 7).
    pub fn rsep_realistic() -> MechanismConfig {
        MechanismConfig::rsep(RsepConfig::realistic())
    }

    /// Value prediction only (fourth bar of Figure 4).
    pub fn value_pred() -> MechanismConfig {
        MechanismConfig {
            label: "vpred".into(),
            vp: Some(VpConfig::paper()),
            ..MechanismConfig::baseline()
        }
    }

    /// RSEP combined with value prediction (fifth bar of Figure 4).
    pub fn rsep_plus_vp() -> MechanismConfig {
        MechanismConfig {
            label: "rsep+vpred".into(),
            move_elim: true,
            rsep: Some(RsepConfig::ideal()),
            vp: Some(VpConfig::paper()),
            ..MechanismConfig::baseline()
        }
    }

    /// Per-component storage budget of this mechanism's prediction
    /// hardware, in bits — the paper's Table II comparison (10.1 KB
    /// realistic RSEP predictor vs ≈256 KB D-VTAGE). Predictor costs come
    /// from the per-config `storage_bits` (exactly what each family's
    /// [`rsep_predictors::Predictor::storage_bits`] delegates to, without
    /// allocating the tables just to measure them); the RSEP bookkeeping
    /// structures (FIFO history, ISRB, distance-propagation FIFO) are
    /// added from their own configs.
    pub fn storage_breakdown(&self) -> Vec<(&'static str, u64)> {
        let mut rows = Vec::new();
        if let Some(rsep) = &self.rsep {
            rows.push(("distance predictor", rsep.predictor.storage_bits()));
            rows.push(("fifo history", rsep.history.storage_bits()));
            rows.push(("isrb", rsep.isrb.storage_bits()));
            rows.push(("distance propagation", rsep.distance_propagation_bytes * 8));
        }
        if let Some(vp) = &self.vp {
            rows.push(("d-vtage", vp.predictor.storage_bits()));
        }
        if let Some(zero) = self.zero_pred {
            rows.push(("zero predictor", zero.storage_bits()));
        }
        rows
    }

    /// Total of [`MechanismConfig::storage_breakdown`] in kilobytes.
    pub fn storage_kb(&self) -> f64 {
        self.storage_breakdown().iter().map(|(_, bits)| *bits).sum::<u64>() as f64 / 8.0 / 1024.0
    }

    /// All the Figure 4 configurations, in plotting order.
    pub fn figure4_suite() -> Vec<MechanismConfig> {
        vec![
            MechanismConfig::zero_pred(),
            MechanismConfig::move_elim(),
            MechanismConfig::rsep_ideal(),
            MechanismConfig::value_pred(),
            MechanismConfig::rsep_plus_vp(),
        ]
    }
}

impl rsep_isa::Fingerprint for SamplingConfig {
    fn fingerprint(&self, h: &mut rsep_isa::Fnv) {
        h.write_str("SamplingConfig");
        self.start_train_raw.fingerprint(h);
        self.start_train_effective.fingerprint(h);
    }
}

impl rsep_isa::Fingerprint for RsepConfig {
    fn fingerprint(&self, h: &mut rsep_isa::Fnv) {
        h.write_str("RsepConfig");
        self.predictor.fingerprint(h);
        self.history.fingerprint(h);
        self.isrb.fingerprint(h);
        self.validation.fingerprint(h);
        self.sampling.fingerprint(h);
        self.distance_propagation_bytes.fingerprint(h);
    }
}

impl rsep_isa::Fingerprint for VpConfig {
    fn fingerprint(&self, h: &mut rsep_isa::Fnv) {
        h.write_str("VpConfig");
        self.predictor.fingerprint(h);
    }
}

impl rsep_isa::Fingerprint for MechanismConfig {
    fn fingerprint(&self, h: &mut rsep_isa::Fnv) {
        h.write_str("MechanismConfig");
        // The label is deliberately excluded: a cell's simulated output does
        // not depend on it (labels are re-attached from the spec at
        // reassembly), so relabelled-but-identical mechanisms share cells.
        self.zero_idiom_elim.fingerprint(h);
        self.move_elim.fingerprint(h);
        self.zero_pred.fingerprint(h);
        self.rsep.fingerprint(h);
        self.vp.fingerprint(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_and_realistic_storage_match_the_paper() {
        let ideal = RsepConfig::ideal();
        let realistic = RsepConfig::realistic();
        // Predictor alone: 42.6 KB vs 10.1 KB.
        assert!((ideal.predictor.storage_kb() - 42.6).abs() < 1.0);
        assert!((realistic.predictor.storage_kb() - 10.1).abs() < 0.7);
        // Full realistic mechanism: about 10.8 KB (predictor + 384 B history
        // + 224 B propagation + 63 B ISRB).
        let total = realistic.storage_kb();
        assert!((total - 10.8).abs() < 0.8, "realistic RSEP storage {total:.2} KB");
        // The paper's headline comparison: an order of magnitude below the
        // 256 KB value predictor.
        assert!(VpConfig::paper().storage_kb() > 10.0 * total);
    }

    #[test]
    fn sampling_thresholds() {
        assert_eq!(SamplingConfig::threshold_63().start_train_effective, 63);
        assert_eq!(SamplingConfig::threshold_15().start_train_effective, 15);
        assert!(
            SamplingConfig::threshold_63().start_train_raw
                > SamplingConfig::threshold_15().start_train_raw
        );
    }

    #[test]
    fn figure4_suite_has_five_configurations() {
        let suite = MechanismConfig::figure4_suite();
        assert_eq!(suite.len(), 5);
        let labels: Vec<_> = suite.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["zero-pred", "move-elim", "rsep-ideal", "vpred", "rsep+vpred"]);
    }

    #[test]
    fn rsep_configurations_enable_move_elimination() {
        assert!(MechanismConfig::rsep_ideal().move_elim);
        assert!(MechanismConfig::rsep_realistic().move_elim);
        assert!(MechanismConfig::rsep_plus_vp().move_elim);
        assert!(!MechanismConfig::value_pred().move_elim);
    }

    #[test]
    fn baseline_keeps_zero_idiom_elimination() {
        // Table I's rename stage performs zero-idiom elimination even in the
        // baseline.
        assert!(MechanismConfig::baseline().zero_idiom_elim);
        assert!(MechanismConfig::baseline().rsep.is_none());
        assert!(MechanismConfig::baseline().vp.is_none());
    }

    #[test]
    fn labels_distinguish_ideal_from_realistic() {
        assert_eq!(MechanismConfig::rsep_ideal().label, "rsep-ideal");
        assert_eq!(MechanismConfig::rsep_realistic().label, "rsep-realistic");
    }
}

//! # rsep-core
//!
//! Register Sharing for Equality Prediction (RSEP) — the primary
//! contribution of the paper — together with the companion mechanisms it is
//! evaluated against.
//!
//! The crate provides:
//!
//! * the RSEP hardware structures: [`HashRegFile`] (Section IV-A),
//!   [`FifoHistory`] and [`Ddt`] pairing (Section IV-B), the TAGE-like
//!   distance predictor lives in `rsep-predictors`, and the [`Isrb`]
//!   register-sharing reference counter (Section IV-E2);
//! * [`RsepConfig`] / [`MechanismConfig`] — the named configurations of the
//!   evaluation (ideal vs realistic RSEP, zero prediction, move
//!   elimination, value prediction, RSEP+VP) with storage accounting that
//!   reproduces the paper's 42.6 KB / 10.1 KB / 10.8 KB figures;
//! * [`RsepEngine`] — the speculation engine that plugs all mechanisms into
//!   the cycle-level core of `rsep-uarch` (Figure 3);
//! * [`RedundancyAnalyzer`] — the commit-time value-redundancy analysis of
//!   Figure 1;
//! * [`run_benchmark`] / [`run_comparison`] — the checkpointed methodology
//!   of Section V.
//!
//! # Quick start
//!
//! ```
//! use rsep_core::{run_benchmark, MechanismConfig};
//! use rsep_trace::{BenchmarkProfile, CheckpointSpec};
//! use rsep_uarch::CoreConfig;
//!
//! let profile = BenchmarkProfile::by_name("libquantum").unwrap();
//! let spec = CheckpointSpec::scaled(1, 500, 2_000);
//! let baseline = run_benchmark(&profile, &MechanismConfig::baseline(),
//!                              &CoreConfig::small_test(), spec, 1);
//! let rsep = run_benchmark(&profile, &MechanismConfig::rsep_ideal(),
//!                          &CoreConfig::small_test(), spec, 1);
//! println!("speedup: {:.3}", rsep.speedup_over(&baseline));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod config;
pub mod ddt;
pub mod engine;
pub mod fifo_history;
pub mod hrf;
pub mod isrb;
pub mod redundancy;
pub mod runner;

pub use config::{MechanismConfig, RsepConfig, SamplingConfig, VpConfig};
pub use ddt::{Ddt, DdtConfig};
pub use engine::{EngineStats, RsepEngine};
pub use fifo_history::{FifoHistory, FifoHistoryConfig, FifoHistoryStats, PairMatch};
pub use hrf::HashRegFile;
pub use isrb::{Isrb, IsrbConfig, IsrbStats};
pub use redundancy::{RedundancyAnalyzer, RedundancyConfig, RedundancyReport};
pub use runner::{
    checkpoint_seed, run_benchmark, run_checkpoint, run_checkpoint_on, run_comparison,
    BenchmarkResult, CheckpointResult,
};

//! Data Dependency Table (DDT) pairing, Section IV-B1.
//!
//! The DDT is the pairing structure of Sha et al.'s NoSQ design: a table
//! indexed (here) by the hash of the produced value, where each entry holds
//! the commit sequence number of the most recent producer of that value.
//! The paper argues the DDT is impractical for RSEP because it would need
//! one port per committing instruction, and shows the FIFO history performs
//! slightly better because it can prefer the *predicted* distance instead of
//! the most recent match; the DDT is implemented here so that the
//! history-depth ablation can compare the two (Section VI-A2).

use rsep_isa::FoldHash;

/// Configuration of the DDT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdtConfig {
    /// log2 of the number of entries.
    pub entries_log2: u8,
    /// Hash width used for indexing.
    pub hash_bits: u8,
    /// Stored CSN width (storage accounting only).
    pub csn_bits: u8,
}

impl DdtConfig {
    /// The "unrealistic 16KB DDT" the paper compares the FIFO against
    /// (Section VI-A2): 8K entries of 16-bit CSNs.
    pub fn paper_16kb() -> DdtConfig {
        DdtConfig { entries_log2: 13, hash_bits: 14, csn_bits: 16 }
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        (1u64 << self.entries_log2) * u64::from(self.csn_bits)
    }
}

/// Hash-indexed table of last-producer commit sequence numbers.
#[derive(Debug)]
pub struct Ddt {
    config: DdtConfig,
    hash: FoldHash,
    entries: Vec<Option<u64>>,
}

impl Ddt {
    /// Creates a DDT.
    pub fn new(config: DdtConfig) -> Ddt {
        Ddt {
            config,
            hash: FoldHash::new(config.hash_bits),
            entries: vec![None; 1 << config.entries_log2],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DdtConfig {
        self.config
    }

    fn index(&self, result: u64) -> usize {
        (self.hash.hash(result) as usize) & ((1 << self.config.entries_log2) - 1)
    }

    /// Looks up the distance to the most recent producer of `result` and
    /// records the committing instruction as the new most recent producer.
    ///
    /// Returns `None` when no producer was recorded (or the previous
    /// producer is too old to be encodable, i.e. the distance exceeds
    /// `u32::MAX`).
    pub fn observe(&mut self, csn: u64, result: u64) -> Option<u32> {
        let idx = self.index(result);
        let previous = self.entries[idx];
        self.entries[idx] = Some(csn);
        match previous {
            Some(prev) if prev < csn => u32::try_from(csn - prev).ok(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_the_paper_comparison_point() {
        let kb = DdtConfig::paper_16kb().storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 16.0).abs() < 0.01, "DDT storage {kb} KB");
    }

    #[test]
    fn distance_is_measured_to_the_most_recent_producer() {
        let mut ddt = Ddt::new(DdtConfig::paper_16kb());
        assert_eq!(ddt.observe(10, 0xabc), None);
        assert_eq!(ddt.observe(25, 0xabc), Some(15));
        assert_eq!(ddt.observe(30, 0xabc), Some(5));
    }

    #[test]
    fn different_values_do_not_alias_with_wide_hashes() {
        let mut ddt = Ddt::new(DdtConfig::paper_16kb());
        assert_eq!(ddt.observe(1, 111), None);
        assert_eq!(ddt.observe(2, 222), None);
        assert_eq!(ddt.observe(3, 111), Some(2));
    }

    #[test]
    fn aliasing_produces_noisy_distances_with_small_tables() {
        // A 1-entry DDT aliases everything: the distance reported for a
        // value may come from a different value — the "per chance" matches
        // the FIFO history avoids.
        let mut ddt = Ddt::new(DdtConfig { entries_log2: 0, hash_bits: 14, csn_bits: 16 });
        assert_eq!(ddt.observe(1, 111), None);
        assert_eq!(ddt.observe(5, 999), Some(4));
    }
}

//! The RSEP speculation engine.
//!
//! [`RsepEngine`] implements the [`SpecEngine`] interface of `rsep-uarch`
//! and composes every mechanism the paper studies, according to a
//! [`MechanismConfig`]:
//!
//! * zero-idiom elimination (baseline rename feature, Table I),
//! * move elimination (Section IV-H1, enabled together with RSEP),
//! * zero prediction (Section III),
//! * RSEP distance prediction with register sharing through the ISRB and
//!   a configurable validation policy (Section IV),
//! * conventional value prediction with D-VTAGE (Section II-A).
//!
//! The engine mirrors the pipeline of Figure 3: the distance predictor is
//! consulted at Rename (the ROB is indexed with the predicted distance to
//! find the provider register), predictions are validated by issuing the
//! predicted instruction a second time (charged by the core according to
//! the validation policy), and training happens at Commit from the FIFO
//! history — with optional commit-group sampling plus the
//! likely-candidate/validation-path refinement of Section IV-B3.

use crate::config::{MechanismConfig, RsepConfig, VpConfig};
use crate::fifo_history::FifoHistory;
use crate::isrb::Isrb;
use rsep_isa::{DynInst, OpClass, PhysReg};
use rsep_predictors::{
    DistancePredictor, Dvtage, GlobalHistory, IDistPredictor as _, Predictor, PredictorStats,
    ZeroPredictor,
};
use rsep_uarch::{Disposition, RenameAction, RenameContext, SpecEngine};
// lint: exempt(determinism, keyed lookup only; the map is never iterated)
use std::collections::HashMap;

/// Counters describing the engine's own activity (in addition to the
/// core's [`rsep_uarch::SimStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rename-time RSEP opportunities dropped because the provider had
    /// already left the ROB.
    pub provider_out_of_window: u64,
    /// Rename-time RSEP opportunities dropped because provider and
    /// destination live in different register files.
    pub class_mismatch: u64,
    /// Rename-time RSEP opportunities dropped because the ISRB was full.
    pub isrb_full: u64,
    /// Distance predictions used for sharing.
    pub shares_attempted: u64,
    /// Value predictions used.
    pub value_predictions_used: u64,
    /// Zero predictions used.
    pub zero_predictions_used: u64,
}

/// The composed speculation engine.
#[derive(Debug)]
pub struct RsepEngine {
    config: MechanismConfig,
    ghist: GlobalHistory,
    distance: Option<DistancePredictor>,
    fifo: Option<FifoHistory>,
    isrb: Option<Isrb>,
    dvtage: Option<Dvtage>,
    zero: Option<ZeroPredictor>,
    /// Predicted distances propagated from Rename to Commit (Section VI-B
    /// counts 224 B for this FIFO).
    // lint: exempt(determinism, keyed by sequence number and never iterated)
    pending_distances: HashMap<u64, u32>,
    stats: EngineStats,
}

impl RsepEngine {
    /// Builds an engine from a mechanism configuration.
    pub fn new(config: MechanismConfig) -> RsepEngine {
        let distance = config.rsep.as_ref().map(|r| DistancePredictor::new(r.predictor.clone()));
        let fifo = config.rsep.as_ref().map(|r| FifoHistory::new(r.history));
        let isrb = config.rsep.as_ref().map(|r| Isrb::new(r.isrb));
        let dvtage = config.vp.as_ref().map(|v: &VpConfig| Dvtage::new(v.predictor.clone()));
        let zero = config.zero_pred.map(ZeroPredictor::new);
        RsepEngine {
            config,
            ghist: GlobalHistory::new(),
            distance,
            fifo,
            isrb,
            dvtage,
            zero,
            // lint: exempt(determinism, keyed by sequence number and never iterated)
            pending_distances: HashMap::new(),
            stats: EngineStats::default(),
        }
    }

    /// The mechanism configuration driving this engine.
    pub fn config(&self) -> &MechanismConfig {
        &self.config
    }

    /// Engine-side statistics.
    pub fn engine_stats(&self) -> EngineStats {
        self.stats
    }

    /// ISRB statistics, when RSEP is enabled.
    pub fn isrb_stats(&self) -> Option<crate::isrb::IsrbStats> {
        self.isrb.as_ref().map(|i| i.stats())
    }

    /// Distance-predictor statistics, when RSEP is enabled.
    pub fn distance_stats(&self) -> Option<PredictorStats> {
        self.distance.as_ref().map(|d| d.stats())
    }

    /// FIFO-history statistics, when RSEP is enabled.
    pub fn fifo_stats(&self) -> Option<crate::fifo_history::FifoHistoryStats> {
        self.fifo.as_ref().map(|f| f.stats())
    }

    /// RSEP configuration, when the mechanism is enabled.
    pub fn rsep_config(&self) -> Option<&RsepConfig> {
        self.config.rsep.as_ref()
    }

    /// Attempts an RSEP share for `inst`; returns the action when the whole
    /// chain (confident prediction, provider in the ROB, same register
    /// class, ISRB space) succeeds.
    fn try_share(&mut self, inst: &DynInst, ctx: &RenameContext<'_>) -> Option<RenameAction> {
        let rsep = self.config.rsep.as_ref()?;
        let predictor = self.distance.as_mut()?;
        let prediction = predictor.predict(inst.pc, &self.ghist)?;
        // Remember the predicted distance so commit can prefer it when
        // searching the FIFO history (and so likely candidates can train
        // through the validation path).
        let start_train = rsep.sampling.map(|s| s.start_train_raw).unwrap_or(0);
        if prediction.usable() || prediction.likely_candidate(start_train) {
            self.pending_distances.insert(inst.seq, prediction.distance);
        }
        if !prediction.usable() || prediction.distance == 0 {
            return None;
        }
        let provider_seq = inst.seq.checked_sub(u64::from(prediction.distance))?;
        let Some(provider) = ctx.rob.find_by_seq(provider_seq) else {
            self.stats.provider_out_of_window += 1;
            return None;
        };
        if !provider.inst.produces_register() {
            self.stats.provider_out_of_window += 1;
            return None;
        }
        let provider_preg = provider.dest_preg?;
        let dest_class = inst.dest?.class();
        if provider_preg.class() != dest_class {
            self.stats.class_mismatch += 1;
            return None;
        }
        let isrb = self.isrb.as_mut()?;
        if !isrb.try_share(provider_preg, inst.seq) {
            self.stats.isrb_full += 1;
            return None;
        }
        self.stats.shares_attempted += 1;
        Some(RenameAction::Share {
            provider_seq,
            correct: inst.result == provider.inst.result,
            validation: rsep.validation,
        })
    }

    /// Trains the RSEP machinery for one committed register producer.
    fn train_rsep(&mut self, inst: &DynInst, clock: u64) {
        let Some(rsep) = self.config.rsep.as_ref() else {
            return;
        };
        let (Some(fifo), Some(predictor)) = (self.fifo.as_mut(), self.distance.as_mut()) else {
            return;
        };
        let predicted = self.pending_distances.remove(&inst.seq);
        let mut search_allowed = true;
        if rsep.sampling.is_some() {
            let is_candidate = predicted.is_some();
            if is_candidate {
                // Likely candidates finish training through the validation
                // mechanism: they compare against the register they would
                // have shared (the predicted distance) instead of searching
                // the history at commit.
                search_allowed = false;
                let d = predicted.expect("candidate implies a propagated distance");
                if let Some(m) = fifo.find_pair(inst.seq, inst.result, Some(d)) {
                    predictor.train(inst.pc, m.distance, &self.ghist);
                } else {
                    // No live pair: decay by training toward the maximal
                    // distance, which will reset confidence.
                    let max_distance = predictor.max_distance();
                    predictor.train(inst.pc, max_distance, &self.ghist);
                }
            } else {
                // Non-candidates only search when they win the commit-group
                // sampling lottery (one per cycle).
                search_allowed = fifo.admit_sampled(clock, 8);
            }
        }
        if search_allowed {
            if let Some(m) = fifo.find_pair(inst.seq, inst.result, predicted) {
                predictor.train(inst.pc, m.distance, &self.ghist);
            }
        }
        // Every retired producer enters the history regardless of sampling.
        fifo.push(inst.seq, inst.result);
    }
}

impl SpecEngine for RsepEngine {
    fn name(&self) -> String {
        self.config.label.clone()
    }

    fn on_branch(&mut self, pc: u64, taken: bool) {
        self.ghist.push(taken, pc);
        if let Some(d) = self.distance.as_mut() {
            d.on_history_update(&self.ghist);
        }
        if let Some(v) = self.dvtage.as_mut() {
            v.on_history_update(&self.ghist);
        }
    }

    fn at_rename(&mut self, inst: &DynInst, ctx: &RenameContext<'_>) -> RenameAction {
        // Non-speculative eliminations first (Decode/Rename features).
        if inst.op == OpClass::ZeroIdiom && self.config.zero_idiom_elim {
            return RenameAction::EliminateZeroIdiom;
        }
        if inst.op == OpClass::Move && self.config.move_elim && inst.num_sources() > 0 {
            return RenameAction::EliminateMove;
        }
        if !inst.eligible_for_prediction() {
            return RenameAction::Normal;
        }
        // RSEP has priority; VP covers instructions RSEP does not capture
        // (this is the composition used for the RSEP+VP configuration).
        if self.config.rsep.is_some() {
            if let Some(action) = self.try_share(inst, ctx) {
                return action;
            }
        }
        if let Some(dvtage) = self.dvtage.as_mut() {
            if let Some(p) = dvtage.predict(inst.pc, &self.ghist) {
                if p.usable() {
                    self.stats.value_predictions_used += 1;
                    return RenameAction::PredictValue { correct: p.value == inst.result };
                }
            }
        }
        if let Some(zero) = self.zero.as_mut() {
            if zero.predict(inst.pc, &self.ghist).is_some() {
                self.stats.zero_predictions_used += 1;
                return RenameAction::PredictZero { correct: inst.result == 0 };
            }
        }
        RenameAction::Normal
    }

    fn at_commit(&mut self, inst: &DynInst, disposition: Disposition, clock: u64) {
        if matches!(disposition, Disposition::DistPred { .. }) {
            if let Some(isrb) = self.isrb.as_mut() {
                isrb.on_sharer_commit(inst.seq);
            }
        }
        if !inst.eligible_for_prediction() {
            self.pending_distances.remove(&inst.seq);
            return;
        }
        // Commit-time training of every enabled predictor.
        if let Some(zero) = self.zero.as_mut() {
            zero.train(inst.pc, inst.result == 0, &self.ghist);
        }
        if let Some(dvtage) = self.dvtage.as_mut() {
            dvtage.train(inst.pc, inst.result, &self.ghist);
        }
        if self.config.rsep.is_some() {
            self.train_rsep(inst, clock);
        } else {
            self.pending_distances.remove(&inst.seq);
        }
    }

    fn release_register(&mut self, preg: PhysReg) -> bool {
        match self.isrb.as_mut() {
            Some(isrb) => isrb.on_release(preg),
            None => true,
        }
    }

    fn on_squash(&mut self, from_seq: u64) -> Vec<PhysReg> {
        self.pending_distances.retain(|&seq, _| seq < from_seq);
        // Predictors train at commit only, so their on_squash hooks are
        // no-ops — broadcast anyway to honour the trait contract.
        if let Some(d) = self.distance.as_mut() {
            d.on_squash(from_seq);
        }
        if let Some(v) = self.dvtage.as_mut() {
            v.on_squash(from_seq);
        }
        if let Some(z) = self.zero.as_mut() {
            z.on_squash(from_seq);
        }
        match self.isrb.as_mut() {
            Some(isrb) => isrb.on_squash(from_seq),
            None => Vec::new(),
        }
    }

    fn predictor_stats(&self) -> Vec<(&'static str, PredictorStats)> {
        let mut stats = Vec::new();
        if let Some(d) = self.distance.as_ref() {
            stats.push((d.name(), d.stats()));
        }
        if let Some(v) = self.dvtage.as_ref() {
            stats.push((v.name(), v.stats()));
        }
        if let Some(z) = self.zero.as_ref() {
            stats.push((z.name(), z.stats()));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use rsep_isa::ArchReg;
    use rsep_uarch::Rob;

    fn ctx(rob: &Rob) -> RenameContext<'_> {
        RenameContext { clock: 0, rob }
    }

    #[test]
    fn zero_idioms_are_eliminated() {
        let mut engine = RsepEngine::new(MechanismConfig::baseline());
        let rob = Rob::new(8);
        let inst = DynInst::simple(0, 0x400000, OpClass::ZeroIdiom, ArchReg::int(1), 0);
        assert_eq!(engine.at_rename(&inst, &ctx(&rob)), RenameAction::EliminateZeroIdiom);
    }

    #[test]
    fn moves_are_eliminated_only_when_enabled() {
        let rob = Rob::new(8);
        let mv = rsep_isa::DynInstBuilder::new(0, 0x400000, OpClass::Move)
            .dest(ArchReg::int(2))
            .src(ArchReg::int(3))
            .result(9)
            .build();
        let mut without = RsepEngine::new(MechanismConfig::baseline());
        assert_eq!(without.at_rename(&mv, &ctx(&rob)), RenameAction::Normal);
        let mut with = RsepEngine::new(MechanismConfig::move_elim());
        assert_eq!(with.at_rename(&mv, &ctx(&rob)), RenameAction::EliminateMove);
    }

    #[test]
    fn zero_prediction_engages_after_training() {
        let mut engine = RsepEngine::new(MechanismConfig::zero_pred());
        let rob = Rob::new(8);
        let inst = DynInst::simple(0, 0x400100, OpClass::IntAlu, ArchReg::int(1), 0);
        // Train heavily.
        for s in 0..20_000u64 {
            let mut i = inst.clone();
            i.seq = s;
            engine.at_commit(&i, Disposition::None, s);
        }
        let mut i = inst.clone();
        i.seq = 30_000;
        let action = engine.at_rename(&i, &ctx(&rob));
        assert_eq!(action, RenameAction::PredictZero { correct: true });
        // A non-zero result is flagged as an incorrect speculation.
        let mut wrong = inst;
        wrong.seq = 30_001;
        wrong.result = 7;
        assert_eq!(
            engine.at_rename(&wrong, &ctx(&rob)),
            RenameAction::PredictZero { correct: false }
        );
    }

    #[test]
    fn value_prediction_engages_for_constant_streams() {
        let mut engine = RsepEngine::new(MechanismConfig::value_pred());
        let rob = Rob::new(8);
        let make =
            |seq: u64| DynInst::simple(seq, 0x400200, OpClass::IntAlu, ArchReg::int(1), 0x42);
        for s in 0..20_000u64 {
            engine.at_commit(&make(s), Disposition::None, s);
        }
        let action = engine.at_rename(&make(30_000), &ctx(&rob));
        assert_eq!(action, RenameAction::PredictValue { correct: true });
        assert!(engine.engine_stats().value_predictions_used > 0);
    }

    #[test]
    fn rsep_engine_reports_configuration() {
        let engine = RsepEngine::new(MechanismConfig::rsep_realistic());
        assert_eq!(engine.name(), "rsep-realistic");
        assert!(engine.config().rsep.is_some());
        assert!(engine.isrb_stats().is_some());
        assert!(engine.distance_stats().is_some());
        assert!(engine.fifo_stats().is_some());
        let baseline = RsepEngine::new(MechanismConfig::baseline());
        assert!(baseline.isrb_stats().is_none());
    }

    #[test]
    fn release_register_defers_to_the_isrb() {
        let mut engine = RsepEngine::new(MechanismConfig::baseline());
        assert!(engine.release_register(PhysReg::new(rsep_isa::RegClass::Int, 4)));
        let mut rsep = RsepEngine::new(MechanismConfig::rsep_ideal());
        // Unshared registers release normally even with RSEP enabled.
        assert!(rsep.release_register(PhysReg::new(rsep_isa::RegClass::Int, 4)));
    }

    #[test]
    fn squash_clears_pending_distances() {
        let mut engine = RsepEngine::new(MechanismConfig::rsep_ideal());
        engine.pending_distances.insert(10, 3);
        engine.pending_distances.insert(20, 5);
        let freed = engine.on_squash(15);
        assert!(freed.is_empty());
        assert!(engine.pending_distances.contains_key(&10));
        assert!(!engine.pending_distances.contains_key(&20));
    }
}

//! Pass-1 machinery tests: the lexer, the item parser and the workspace
//! symbol graph are public API (downstream tooling queries them directly),
//! so their shapes are pinned here rather than only exercised indirectly
//! through the lints.

use rsep_lint::graph::{gate_at, Gate, Graph, RefSite, Symbol};
use rsep_lint::lexer::{lex, Lexed, TokKind};
use rsep_lint::lints::{OBS_TYPES, STATS_FAMILY};
use rsep_lint::parse::{parse_file, ConstDef, Field, ImplDef, ItemDecl, Param, StructDef};
use rsep_lint::{
    lint_sources, lint_sources_with_root, Finding, SourceFile, Tree, Unit, EXEMPTION_LINT,
    LINT_NAMES,
};

fn unit(path: &str, crate_name: &str, text: &str) -> Unit {
    let lexed = lex(text);
    let parsed = parse_file(&lexed.tokens);
    Unit {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        tree: Tree::Src,
        unit_key: format!("crate:{crate_name}"),
        tokens: lexed.tokens,
        directives: lexed.directives,
        readers: lexed.readers,
        parsed,
    }
}

#[test]
fn lexer_separates_tokens_directives_and_readers() {
    let lexed: Lexed = lex(concat!(
        "// lint: exempt(determinism, fixture)\n",
        "// lint: json-reader(Rec)\n",
        "let x = \"key\"; // plain comment\n",
        "const W: u32 = 0x10;\n",
    ));
    assert_eq!(lexed.directives.len(), 1);
    assert_eq!(lexed.directives[0].lint, "determinism");
    assert_eq!(lexed.directives[0].reason, "fixture");
    assert!(lexed.directives[0].malformed.is_none());
    assert_eq!(lexed.readers.len(), 1);
    assert_eq!(lexed.readers[0].target, "Rec");
    assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Str("key".to_string())));
    assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Num(Some(0x10))));
    // Lines are non-decreasing — the engine's partition_point relies on it.
    assert!(lexed.tokens.windows(2).all(|w| w[0].line <= w[1].line));
}

#[test]
fn parser_extracts_every_item_kind() {
    let src = concat!(
        "pub struct Pair { pub lo: u16, pub hi: u16 }\n",
        "pub enum Mode { A, B }\n",
        "pub const WIDTH: u32 = 0x10;\n",
        "impl Pair {\n",
        "    pub fn pack(lo: u16, hi: u16) -> u32 { 0 }\n",
        "}\n",
        "pub fn free(x: u32) -> u32 { x }\n",
    );
    let Lexed { tokens, .. } = lex(src);
    let pf = parse_file(&tokens);

    let sd: &StructDef = &pf.structs[0];
    assert_eq!((sd.name.as_str(), sd.line, sd.is_pub), ("Pair", 1, true));
    let fields: &[Field] = &sd.fields;
    assert_eq!(fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(), ["lo", "hi"]);

    let decl: &ItemDecl = &pf.others[0];
    assert_eq!((decl.kind, decl.name.as_str(), decl.is_pub), ("enum", "Mode", true));

    let cd: &ConstDef = &pf.consts[0];
    assert_eq!((cd.name.as_str(), cd.ty.as_str(), cd.top_level), ("WIDTH", "u32", true));
    assert_eq!(tokens[cd.val.0].kind, TokKind::Num(Some(0x10)));

    let im: &ImplDef = &pf.impls[0];
    assert_eq!((im.type_name.as_str(), im.trait_name.as_deref()), ("Pair", None));
    assert_eq!(im.fns[0].name, "pack");
    assert_eq!(im.fns[0].ret.as_deref(), Some("u32"));
    let p: &Param = &im.fns[0].params[0];
    assert!((p.name.as_str(), p.ty.as_str(), p.simple_ty) == ("lo", "u16", true));

    assert_eq!(pf.free_fns[0].name, "free");
    assert!(pf.free_fns[0].body.is_some());
}

#[test]
fn gate_at_distinguishes_obs_test_and_unconditional() {
    let u = unit(
        "g.rs",
        "c",
        concat!(
            "obs! { pub fn counted() {} }\n",
            "#[cfg(test)]\n",
            "mod t { fn helper() {} }\n",
            "pub fn plain() {}\n",
        ),
    );
    let pos = |name: &str| {
        u.tokens
            .iter()
            .position(|t| matches!(&t.kind, TokKind::Ident(s) if s == name))
            .unwrap_or_else(|| panic!("no token `{name}`"))
    };
    let (counted, helper, plain) = (pos("counted"), pos("helper"), pos("plain"));
    assert_eq!(gate_at(&u, counted, u.tokens[counted].line), Gate::Obs);
    assert_eq!(gate_at(&u, helper, u.tokens[helper].line), Gate::Test);
    assert_eq!(gate_at(&u, plain, u.tokens[plain].line), Gate::Unconditional);
}

#[test]
fn graph_resolves_references_across_units() {
    let a = unit(
        "a.rs",
        "alpha",
        "pub struct Widget { pub w: u32 }\npub fn widget_width() -> u32 { 7 }\n",
    );
    let b = unit("b.rs", "beta", "pub fn consume() -> u32 { widget_width() }\n");
    let g = Graph::build(&[a, b]);

    let widget: &Symbol = &g.symbols[g.by_name["Widget"][0]];
    assert_eq!(
        (widget.kind, widget.is_pub, widget.top_level, widget.unit, widget.line),
        ("struct", true, true, 0, 1)
    );
    assert_eq!(widget.gate, Gate::Unconditional);

    // The call in b.rs resolves to the definition in a.rs; the definition
    // site itself is not a reference.
    let sites: &[RefSite] = &g.refs["widget_width"];
    assert_eq!(sites.len(), 1);
    assert!(sites[0].unit == 1 && sites[0].line == 1 && sites[0].gate == Gate::Unconditional);
}

#[test]
fn lint_name_tables_are_sorted_and_consistent() {
    assert!(LINT_NAMES.windows(2).all(|w| w[0] < w[1]), "LINT_NAMES must be sorted and unique");
    assert!(!LINT_NAMES.contains(&EXEMPTION_LINT), "exemption hygiene is never exemptable");
    assert!(STATS_FAMILY.windows(2).all(|w| w[0] < w[1]));
    assert!(OBS_TYPES.windows(2).all(|w| w[0] < w[1]));
    // Every obs-gated stats type except the rename bookkeeping block is
    // also a merge-coverage target.
    assert!(OBS_TYPES.iter().filter(|t| STATS_FAMILY.contains(t)).count() == OBS_TYPES.len() - 1);
}

#[test]
fn findings_carry_exemption_state() {
    let src = concat!(
        "// lint: exempt(determinism, fixture clock; timing is displayed, never stored)\n",
        "pub fn t() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n",
    );
    let files = vec![SourceFile {
        path: "x.rs".to_string(),
        crate_name: "c".to_string(),
        tree: Tree::Src,
        text: src.to_string(),
    }];
    let findings: Vec<Finding> = lint_sources_with_root(files, None);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let Finding { diag, exempted } = &findings[0];
    assert!(exempted, "the directive must suppress the Instant finding");
    assert_eq!((diag.lint.as_str(), diag.line), ("determinism", 2));

    // The filtered entry point drops exempted findings entirely.
    let files = vec![SourceFile {
        path: "x.rs".to_string(),
        crate_name: "c".to_string(),
        tree: Tree::Src,
        text: src.to_string(),
    }];
    assert_eq!(lint_sources(files), []);
}

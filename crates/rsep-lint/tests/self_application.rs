//! Self-application: the shipped workspace lints clean, and deliberate
//! mutations of real invariant-bearing code are caught. The mutations are
//! the in-tree version of the CI demos: deleting a `fingerprint()` field
//! reference, sliding a packed-word shift constant into overlap, and
//! stripping an exclusion proof — each must fail the gate at the exact
//! expected `file:line`.

use std::path::Path;

use rsep_lint::{lint_sources_with_root, lint_workspace, SourceFile, Tree};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn shipped_workspace_is_clean() {
    let (diags, scanned) = lint_workspace(workspace_root()).expect("workspace walk");
    assert!(scanned > 50, "suspiciously few files scanned: {scanned}");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        rendered.is_empty(),
        "rsep-lint findings on the shipped tree:\n{}",
        rendered.join("\n")
    );
}

/// Lints real workspace files (optionally mutated) as one in-memory set,
/// resolving `proven-by` citations against the real workspace root.
fn lint_set(files: Vec<(&str, &str, String)>) -> Vec<String> {
    let files = files
        .into_iter()
        .map(|(rel, crate_name, text)| SourceFile {
            path: rel.to_string(),
            crate_name: crate_name.to_string(),
            tree: Tree::Src,
            text,
        })
        .collect();
    lint_sources_with_root(files, Some(workspace_root()))
        .iter()
        .filter(|f| !f.exempted)
        .map(|f| f.diag.to_string())
        .collect()
}

fn lint_one(rel: &str, crate_name: &str, text: String) -> Vec<String> {
    lint_set(vec![(rel, crate_name, text)])
}

fn read_workspace_file(rel: &str) -> String {
    let path = workspace_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Removes the unique line containing `needle`, panicking if absent (the
/// mutation must actually mutate).
fn delete_line(text: &str, needle: &str) -> String {
    let mut found = false;
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| {
            let hit = l.contains(needle);
            found |= hit;
            !hit
        })
        .collect();
    assert!(found, "mutation target `{needle}` not found");
    kept.join("\n") + "\n"
}

/// 1-based line of the first line containing `needle`.
fn line_of(text: &str, needle: &str) -> usize {
    text.lines().position(|l| l.contains(needle)).expect(needle) + 1
}

#[test]
fn deleting_a_fingerprint_field_reference_is_caught() {
    let rel = "crates/rsep-uarch/src/config.rs";
    let original = read_workspace_file(rel);
    assert_eq!(lint_one(rel, "rsep-uarch", original.clone()), [] as [&str; 0]);

    let mutated = delete_line(&original, "self.dram_latency.fingerprint(h);");
    let field_line = line_of(&mutated, "pub dram_latency:");
    assert_eq!(
        lint_one(rel, "rsep-uarch", mutated),
        [format!(
            "{rel}:{field_line}: fingerprint-coverage: field `dram_latency` of `CoreConfig` is \
             not referenced in its `fingerprint()` body"
        )]
    );
}

#[test]
fn deleting_a_merge_statement_is_caught() {
    let rel = "crates/rsep-uarch/src/stats.rs";
    let original = read_workspace_file(rel);
    assert_eq!(lint_one(rel, "rsep-uarch", original.clone()), [] as [&str; 0]);

    let mutated = delete_line(&original, "self.stlf_forwards += other.stlf_forwards;");
    let field_line = line_of(&mutated, "pub stlf_forwards:");
    assert_eq!(
        lint_one(rel, "rsep-uarch", mutated),
        [format!(
            "{rel}:{field_line}: merge-coverage: field `stlf_forwards` of `SimStats` does not \
             appear in its `merge()`"
        )]
    );
}

#[test]
fn sliding_a_shift_constant_into_overlap_is_caught() {
    let rel = "crates/rsep-predictors/src/tage.rs";
    let original = read_workspace_file(rel);
    assert_eq!(lint_one(rel, "rsep-predictors", original.clone()), [] as [&str; 0]);

    // USEFUL_SHIFT 19 → 17 slides the 2-bit useful field into the 3-bit
    // counter at bits 16..19. Pack side and unpack side both detect it and
    // anchor at the mutated constant, so exactly one diagnostic survives
    // dedup.
    let needle = "const USEFUL_SHIFT: u32 = 19;";
    assert!(original.contains(needle), "expected {needle} in {rel}");
    let mutated = original.replace(needle, "const USEFUL_SHIFT: u32 = 17;");
    let const_line = line_of(&mutated, "const USEFUL_SHIFT: u32 = 17;");
    assert_eq!(
        lint_one(rel, "rsep-predictors", mutated),
        [format!(
            "{rel}:{const_line}: packed-layout: `CTR_SHIFT` (bits 16..19) and `USEFUL_SHIFT` \
             (bits 17..19) of the u32 packed word overlap"
        )]
    );
}

#[test]
fn unmasking_a_packed_field_is_caught() {
    let rel = "crates/rsep-predictors/src/dvtage.rs";
    let original = read_workspace_file(rel);

    // Dropping the confidence mask lets an 8-bit value smear over the
    // VALID and USEFUL flag bits — the exact latent bug this lint found in
    // the shipped pack functions.
    let needle = "((u64::from(conf) & 0x3f) << T_CONF_SHIFT)";
    assert!(original.contains(needle), "expected {needle} in {rel}");
    let mutated = original.replace(needle, "(u64::from(conf) << T_CONF_SHIFT)");
    let diags = lint_one(rel, "rsep-predictors", mutated);
    assert!(
        diags.iter().any(|d| d.contains("packed-layout") && d.contains("`T_VALID`")),
        "expected a packed-layout overlap with T_VALID, got:\n{}",
        diags.join("\n")
    );
}

#[test]
fn blanking_an_exemption_reason_is_caught() {
    let rel = "crates/rsep-core/src/config.rs";
    let original = read_workspace_file(rel);
    let needle = "// lint: exempt(fingerprint-coverage, presentation-only; cached cells must \
                  be label-invariant; proven-by crates/rsep-campaign/tests/store.rs)";
    assert!(original.contains(needle), "expected the label exemption in {rel}");
    let mutated = original.replace(needle, "// lint: exempt(fingerprint-coverage, )");
    let diags = lint_one(rel, "rsep-core", mutated);
    // The blanked exemption no longer suppresses, so both the hygiene
    // finding and the underlying fingerprint-coverage finding surface.
    assert_eq!(diags.len(), 2, "expected two findings, got:\n{}", diags.join("\n"));
    assert!(diags.iter().any(|d| d.contains("must carry a non-empty reason")), "{diags:?}");
    assert!(diags.iter().any(|d| d.contains("field `label` of `MechanismConfig`")), "{diags:?}");
}

#[test]
fn stripping_an_exclusion_proof_is_caught() {
    let rel = "crates/rsep-core/src/config.rs";
    let original = read_workspace_file(rel);
    let needle = "; proven-by crates/rsep-campaign/tests/store.rs)";
    assert!(original.contains(needle), "expected a proven-by clause in {rel}");
    let mutated = original.replace(needle, ")");
    let directive_line = line_of(&mutated, "// lint: exempt(fingerprint-coverage,");
    assert_eq!(
        lint_one(rel, "rsep-core", mutated),
        [format!(
            "{rel}:{directive_line}: fingerprint-exclusion-audit: fingerprint-coverage \
             exemption must cite the equivalence test proving the exclusion safe: append \
             `; proven-by <file>` to the reason"
        )]
    );
}

#[test]
fn citing_a_nonexistent_proof_is_caught() {
    let rel = "crates/rsep-core/src/config.rs";
    let original = read_workspace_file(rel);
    let mutated = original.replace(
        "proven-by crates/rsep-campaign/tests/store.rs",
        "proven-by crates/rsep-campaign/tests/gone.rs",
    );
    assert_ne!(mutated, original);
    let diags = lint_one(rel, "rsep-core", mutated);
    assert!(
        diags.iter().any(|d| d.contains(
            "`crates/rsep-campaign/tests/gone.rs` cited by \
                                         proven-by does not exist"
        )),
        "{diags:?}"
    );
}

#[test]
fn dropping_a_from_json_reader_is_caught() {
    let rel = "crates/rsep-campaign/src/store.rs";
    let original = read_workspace_file(rel);
    // Stop reading back SimStats' "cycles": the writer side now emits a key
    // the reader ignores, exactly the stale-schema bug the lint exists for.
    let needle = "\"cycles\"";
    assert!(original.contains(needle), "expected a cycles key in {rel}");
    let mutated = original.replacen("\"cycles\"", "\"cycles_renamed\"", 1);
    let diags = lint_one(rel, "rsep-campaign", mutated);
    assert!(
        diags.iter().any(|d| d.contains("json-roundtrip")),
        "expected a json-roundtrip finding, got:\n{}",
        diags.join("\n")
    );
}

#[test]
fn renaming_a_bench_gate_key_is_caught() {
    // The bench gate reads BenchRecord JSON from another crate; the
    // `json-reader(BenchRecord)` declaration pairs them. Renaming a key the
    // writer never emits must fail.
    let gate_rel = "crates/rsep-bench/src/bin/bench_gate.rs";
    let record_rel = "crates/rsep-bench/src/record.rs";
    let gate = read_workspace_file(gate_rel);
    let record = read_workspace_file(record_rel);
    let clean = lint_set(vec![
        (gate_rel, "rsep-bench", gate.clone()),
        (record_rel, "rsep-bench", record.clone()),
    ]);
    assert!(
        !clean.iter().any(|d| d.contains("json-roundtrip")),
        "unexpected json findings on the shipped pair:\n{}",
        clean.join("\n")
    );

    let needle = "get(\"results\")";
    assert!(gate.contains(needle), "expected {needle} in {gate_rel}");
    let mutated = gate.replace(needle, "get(\"result_rows\")");
    let key_line = line_of(&mutated, "get(\"result_rows\")");
    let diags =
        lint_set(vec![(gate_rel, "rsep-bench", mutated), (record_rel, "rsep-bench", record)]);
    let expected = format!(
        "{gate_rel}:{key_line}: json-roundtrip: key \"result_rows\" is read by `compare` \
         (json-reader of `BenchRecord`) but never emitted by `BenchRecord`'s to_json"
    );
    assert!(diags.contains(&expected), "expected:\n{expected}\ngot:\n{}", diags.join("\n"));
}

//! Self-application: the shipped workspace lints clean, and deliberate
//! mutations of real invariant-bearing code are caught. The mutations are
//! the in-tree version of the CI demo that deletes a `fingerprint()` field
//! reference and requires the lint gate to fail.

use std::path::Path;

use rsep_lint::{lint_sources, lint_workspace, SourceFile};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn shipped_workspace_is_clean() {
    let (diags, scanned) = lint_workspace(workspace_root()).expect("workspace walk");
    assert!(scanned > 50, "suspiciously few files scanned: {scanned}");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        rendered.is_empty(),
        "rsep-lint findings on the shipped tree:\n{}",
        rendered.join("\n")
    );
}

/// Lints one real workspace file (optionally mutated) as its own crate.
fn lint_one(rel: &str, crate_name: &str, text: String) -> Vec<String> {
    lint_sources(vec![SourceFile {
        path: rel.to_string(),
        crate_name: crate_name.to_string(),
        text,
    }])
    .iter()
    .map(ToString::to_string)
    .collect()
}

fn read_workspace_file(rel: &str) -> String {
    let path = workspace_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Removes the unique line containing `needle`, panicking if absent (the
/// mutation must actually mutate).
fn delete_line(text: &str, needle: &str) -> String {
    let mut found = false;
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| {
            let hit = l.contains(needle);
            found |= hit;
            !hit
        })
        .collect();
    assert!(found, "mutation target `{needle}` not found");
    kept.join("\n") + "\n"
}

/// 1-based line of the first line containing `needle`.
fn line_of(text: &str, needle: &str) -> usize {
    text.lines().position(|l| l.contains(needle)).expect(needle) + 1
}

#[test]
fn deleting_a_fingerprint_field_reference_is_caught() {
    let rel = "crates/rsep-uarch/src/config.rs";
    let original = read_workspace_file(rel);
    assert_eq!(lint_one(rel, "rsep-uarch", original.clone()), [] as [&str; 0]);

    let mutated = delete_line(&original, "self.dram_latency.fingerprint(h);");
    let field_line = line_of(&mutated, "pub dram_latency:");
    assert_eq!(
        lint_one(rel, "rsep-uarch", mutated),
        [format!(
            "{rel}:{field_line}: fingerprint-coverage: field `dram_latency` of `CoreConfig` is \
             not referenced in its `fingerprint()` body"
        )]
    );
}

#[test]
fn deleting_a_merge_statement_is_caught() {
    let rel = "crates/rsep-uarch/src/stats.rs";
    let original = read_workspace_file(rel);
    assert_eq!(lint_one(rel, "rsep-uarch", original.clone()), [] as [&str; 0]);

    let mutated = delete_line(&original, "self.stlf_forwards += other.stlf_forwards;");
    let field_line = line_of(&mutated, "pub stlf_forwards:");
    assert_eq!(
        lint_one(rel, "rsep-uarch", mutated),
        [format!(
            "{rel}:{field_line}: merge-coverage: field `stlf_forwards` of `SimStats` does not \
             appear in its `merge()`"
        )]
    );
}

#[test]
fn blanking_an_exemption_reason_is_caught() {
    let rel = "crates/rsep-core/src/config.rs";
    let original = read_workspace_file(rel);
    let needle = "// lint: exempt(fingerprint-coverage, presentation-only; cached cells must \
                  be label-invariant)";
    assert!(original.contains(needle), "expected the label exemption in {rel}");
    let mutated = original.replace(needle, "// lint: exempt(fingerprint-coverage, )");
    let diags = lint_one(rel, "rsep-core", mutated);
    // The blanked exemption no longer suppresses, so both the hygiene
    // finding and the underlying fingerprint-coverage finding surface.
    assert_eq!(diags.len(), 2, "expected two findings, got:\n{}", diags.join("\n"));
    assert!(diags.iter().any(|d| d.contains("must carry a non-empty reason")), "{diags:?}");
    assert!(diags.iter().any(|d| d.contains("field `label` of `MechanismConfig`")), "{diags:?}");
}

#[test]
fn dropping_a_from_json_reader_is_caught() {
    let rel = "crates/rsep-campaign/src/store.rs";
    let original = read_workspace_file(rel);
    // Stop reading back SimStats' "cycles": the writer side now emits a key
    // the reader ignores, exactly the stale-schema bug the lint exists for.
    let needle = "\"cycles\"";
    assert!(original.contains(needle), "expected a cycles key in {rel}");
    let mutated = original.replacen("\"cycles\"", "\"cycles_renamed\"", 1);
    let diags = lint_one(rel, "rsep-campaign", mutated);
    assert!(
        diags.iter().any(|d| d.contains("json-roundtrip")),
        "expected a json-roundtrip finding, got:\n{}",
        diags.join("\n")
    );
}

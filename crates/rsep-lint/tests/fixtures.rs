//! Fixture corpus: each lint demonstrated on a known-bad snippet with the
//! exact `file:line: lint-name: message` output pinned, plus the
//! exempted-good twin that must come back clean.

use rsep_lint::{lint_sources, SourceFile};

/// Lints one fixture file under the given crate name and returns the
/// rendered diagnostics.
fn run(name: &str, crate_name: &str) -> Vec<String> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    lint_sources(vec![SourceFile {
        path: format!("fixtures/{name}"),
        crate_name: crate_name.to_string(),
        text,
    }])
    .iter()
    .map(ToString::to_string)
    .collect()
}

#[test]
fn fingerprint_bad_pins_the_diagnostic() {
    assert_eq!(
        run("fingerprint_bad.rs", "fixture"),
        ["fixtures/fingerprint_bad.rs:5: fingerprint-coverage: field `depth` of `Knobs` is not \
          referenced in its `fingerprint()` body"]
    );
}

#[test]
fn fingerprint_exempted_twin_is_clean() {
    assert_eq!(run("fingerprint_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn merge_bad_pins_both_diagnostics() {
    assert_eq!(
        run("merge_bad.rs", "fixture"),
        [
            "fixtures/merge_bad.rs:6: merge-coverage: field `flushes` of `SimStats` does not \
             appear in its `merge()`",
            "fixtures/merge_bad.rs:15: merge-coverage: `CacheStats` is in the stats family but \
             has no `merge()`",
        ]
    );
}

#[test]
fn merge_exempted_twin_is_clean() {
    assert_eq!(run("merge_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn json_bad_pins_all_three_diagnostics() {
    assert_eq!(
        run("json_bad.rs", "fixture"),
        [
            "fixtures/json_bad.rs:6: json-roundtrip: key \"written\" is emitted by `Report`'s \
             to_json but never read by its from_json",
            "fixtures/json_bad.rs:10: json-roundtrip: key \"ghost\" is read by `Report`'s \
             from_json but never emitted by its to_json",
            "fixtures/json_bad.rs:19: json-roundtrip: key \"extra\" is read by `stats`'s \
             from_json but never emitted by its to_json",
        ]
    );
}

#[test]
fn json_exempted_twin_is_clean() {
    assert_eq!(run("json_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn obs_bad_flags_only_the_ungated_reference() {
    assert_eq!(
        run("obs_bad.rs", "rsep-uarch"),
        ["fixtures/obs_bad.rs:8: obs-gate: `StageAttribution` referenced outside `obs!` / \
          `#[cfg(feature = \"obs\")]`"]
    );
}

#[test]
fn obs_exempted_twin_is_clean() {
    assert_eq!(run("obs_exempt.rs", "rsep-uarch"), [] as [&str; 0]);
}

#[test]
fn obs_gate_is_scoped_to_rsep_uarch() {
    // The identical bad source is fine in any other crate.
    assert_eq!(run("obs_bad.rs", "rsep-campaign"), [] as [&str; 0]);
}

#[test]
fn determinism_bad_pins_all_four_diagnostics() {
    assert_eq!(
        run("determinism_bad.rs", "fixture"),
        [
            "fixtures/determinism_bad.rs:3: determinism: `HashMap` has nondeterministic \
             iteration order; use an ordered structure or exempt with a justification",
            "fixtures/determinism_bad.rs:7: determinism: `Instant::now()` reads the wall clock; \
             results must not depend on it",
            "fixtures/determinism_bad.rs:8: determinism: `HashMap` has nondeterministic \
             iteration order; use an ordered structure or exempt with a justification",
            "fixtures/determinism_bad.rs:14: determinism: `SystemTime::now()` reads the wall \
             clock; results must not depend on it",
        ]
    );
}

#[test]
fn determinism_exempted_twin_is_clean() {
    // Also proves `#[cfg(test)]` modules are out of scope: the fixture's
    // test module uses HashSet and Instant::now with no exemption.
    assert_eq!(run("determinism_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn exemption_hygiene_violations_are_findings() {
    assert_eq!(
        run("exemption_bad.rs", "fixture"),
        [
            "fixtures/exemption_bad.rs:4: exemption: exemption for `determinism` must carry a \
             non-empty reason",
            "fixtures/exemption_bad.rs:5: exemption: exemption names unknown lint `made-up-lint`",
            "fixtures/exemption_bad.rs:6: exemption: exemption for `determinism` does not \
             suppress any finding",
            "fixtures/exemption_bad.rs:7: exemption: expected `(<lint>, <reason>)` after \
             `exempt`",
            "fixtures/exemption_bad.rs:8: exemption: unclosed `(` in exemption directive",
            "fixtures/exemption_bad.rs:9: exemption: unknown `lint:` directive (expected \
             `exempt(<lint>, <reason>)` or `exempt-file(...)`)",
        ]
    );
}

#[test]
fn exempt_file_covers_the_whole_file() {
    let text = "use std::collections::HashMap;\n\
                // lint: exempt-file(determinism, fixture-wide justification)\n\
                pub fn build() -> HashMap<u64, u64> {\n    HashMap::new()\n}\n";
    let diags = lint_sources(vec![SourceFile {
        path: "inline.rs".to_string(),
        crate_name: "fixture".to_string(),
        text: text.to_string(),
    }]);
    assert_eq!(diags, []);
}

//! Fixture corpus: each lint demonstrated on a known-bad snippet with the
//! exact `file:line: lint-name: message` output pinned, plus the
//! exempted-good twin that must come back clean.

use std::path::Path;

use rsep_lint::{lint_sources_with_root, SourceFile, Tree};

fn read_fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Lints fixture files under the given crate name and returns the rendered
/// non-exempt diagnostics. `proven-by` paths resolve against the crate
/// directory, so fixtures can cite sibling fixtures.
fn run_many(names: &[&str], crate_name: &str) -> Vec<String> {
    let files = names
        .iter()
        .map(|name| SourceFile {
            path: format!("fixtures/{name}"),
            crate_name: crate_name.to_string(),
            tree: Tree::Src,
            text: read_fixture(name),
        })
        .collect();
    lint_sources_with_root(files, Some(Path::new(env!("CARGO_MANIFEST_DIR"))))
        .iter()
        .filter(|f| !f.exempted)
        .map(|f| f.diag.to_string())
        .collect()
}

fn run(name: &str, crate_name: &str) -> Vec<String> {
    run_many(&[name], crate_name)
}

#[test]
fn fingerprint_bad_pins_the_diagnostic() {
    assert_eq!(
        run("fingerprint_bad.rs", "fixture"),
        ["fixtures/fingerprint_bad.rs:5: fingerprint-coverage: field `depth` of `Knobs` is not \
          referenced in its `fingerprint()` body"]
    );
}

#[test]
fn fingerprint_exempted_twin_is_clean() {
    assert_eq!(run("fingerprint_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn merge_bad_pins_both_diagnostics() {
    assert_eq!(
        run("merge_bad.rs", "fixture"),
        [
            "fixtures/merge_bad.rs:6: merge-coverage: field `flushes` of `SimStats` does not \
             appear in its `merge()`",
            "fixtures/merge_bad.rs:15: merge-coverage: `CacheStats` is in the stats family but \
             has no `merge()`",
        ]
    );
}

#[test]
fn merge_exempted_twin_is_clean() {
    assert_eq!(run("merge_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn json_bad_pins_all_three_diagnostics() {
    assert_eq!(
        run("json_bad.rs", "fixture"),
        [
            "fixtures/json_bad.rs:6: json-roundtrip: key \"written\" is emitted by `Report`'s \
             to_json but never read by its from_json",
            "fixtures/json_bad.rs:10: json-roundtrip: key \"ghost\" is read by `Report`'s \
             from_json but never emitted by its to_json",
            "fixtures/json_bad.rs:19: json-roundtrip: key \"extra\" is read by `stats`'s \
             from_json but never emitted by its to_json",
        ]
    );
}

#[test]
fn json_exempted_twin_is_clean() {
    assert_eq!(run("json_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn bin_bad_pins_both_asymmetries() {
    // `F_GHOST` (writer-only) anchors at the decoder; `END_MARK`
    // (reader-only) anchors at the encoder. The lone `encode_orphan` with
    // no decode partner is skipped.
    assert_eq!(
        run("bin_bad.rs", "fixture"),
        [
            "fixtures/bin_bad.rs:9: bin-roundtrip: `decode_rec` uses layout constant \
             `END_MARK` but `encode_rec` never references it",
            "fixtures/bin_bad.rs:13: bin-roundtrip: `encode_rec` uses layout constant \
             `F_GHOST` but `decode_rec` never references it",
        ]
    );
}

#[test]
fn bin_exempted_twin_is_clean() {
    assert_eq!(run("bin_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn json_pairing_crosses_file_boundaries() {
    // Writer and reader live in different files of different crates; the
    // pairing must still find the `written`/`ghost` mismatches (the old
    // per-file pairing stopped at the file boundary and saw nothing).
    let writer = "impl Report {\n\
                  \x20   pub fn to_json(&self) -> Json {\n\
                  \x20       obj(&[(\"cycles\", self.cycles), (\"written\", self.written)])\n\
                  \x20   }\n\
                  }\n";
    let reader = "impl Report {\n\
                  \x20   pub fn from_json(json: &Json) -> Report {\n\
                  \x20       Report { cycles: get(json, \"cycles\"), ghost: get(json, \"ghost\") }\n\
                  \x20   }\n\
                  }\n";
    let files = vec![
        SourceFile {
            path: "a/writer.rs".to_string(),
            crate_name: "crate-a".to_string(),
            tree: Tree::Src,
            text: writer.to_string(),
        },
        SourceFile {
            path: "b/reader.rs".to_string(),
            crate_name: "crate-b".to_string(),
            tree: Tree::Src,
            text: reader.to_string(),
        },
    ];
    let diags: Vec<String> = lint_sources_with_root(files, None)
        .iter()
        .filter(|f| !f.exempted)
        .map(|f| f.diag.to_string())
        .collect();
    assert_eq!(
        diags,
        [
            "a/writer.rs:3: json-roundtrip: key \"written\" is emitted by `Report`'s to_json \
             but never read by its from_json",
            "b/reader.rs:3: json-roundtrip: key \"ghost\" is read by `Report`'s from_json but \
             never emitted by its to_json",
        ]
    );
}

#[test]
fn json_reader_bad_pins_the_unknown_key() {
    assert_eq!(
        run("json_reader_bad.rs", "fixture"),
        ["fixtures/json_reader_bad.rs:18: json-roundtrip: key \"gamma\" is read by `check` \
          (json-reader of `Rec`) but never emitted by `Rec`'s to_json"]
    );
}

#[test]
fn json_reader_without_a_writer_is_a_hygiene_finding() {
    let text = "// lint: json-reader(NoSuchRecord)\n\
                pub fn check(map: &Map) -> u64 {\n    map.get(\"alpha\").copied().unwrap_or(0)\n}\n";
    let diags: Vec<String> = lint_sources_with_root(
        vec![SourceFile {
            path: "inline.rs".to_string(),
            crate_name: "fixture".to_string(),
            tree: Tree::Src,
            text: text.to_string(),
        }],
        None,
    )
    .iter()
    .map(|f| f.diag.to_string())
    .collect();
    assert_eq!(
        diags,
        ["inline.rs:1: exemption: json-reader names `NoSuchRecord` but no `NoSuchRecord` \
          to_json writer exists in the workspace"]
    );
}

#[test]
fn obs_bad_flags_only_the_ungated_reference() {
    assert_eq!(
        run("obs_bad.rs", "rsep-uarch"),
        ["fixtures/obs_bad.rs:8: obs-gate: `StageAttribution` referenced outside `obs!` / \
          `#[cfg(feature = \"obs\")]`"]
    );
}

#[test]
fn obs_exempted_twin_is_clean() {
    assert_eq!(run("obs_exempt.rs", "rsep-uarch"), [] as [&str; 0]);
}

#[test]
fn obs_gate_is_scoped_to_rsep_uarch() {
    // The identical bad source is fine in any other crate.
    assert_eq!(run("obs_bad.rs", "rsep-campaign"), [] as [&str; 0]);
}

#[test]
fn determinism_bad_pins_all_four_diagnostics() {
    assert_eq!(
        run("determinism_bad.rs", "fixture"),
        [
            "fixtures/determinism_bad.rs:3: determinism: `HashMap` has nondeterministic \
             iteration order; use an ordered structure or exempt with a justification",
            "fixtures/determinism_bad.rs:7: determinism: `Instant::now()` reads the wall clock; \
             results must not depend on it",
            "fixtures/determinism_bad.rs:8: determinism: `HashMap` has nondeterministic \
             iteration order; use an ordered structure or exempt with a justification",
            "fixtures/determinism_bad.rs:14: determinism: `SystemTime::now()` reads the wall \
             clock; results must not depend on it",
        ]
    );
}

#[test]
fn determinism_exempted_twin_is_clean() {
    // Also proves `#[cfg(test)]` modules are out of scope: the fixture's
    // test module uses HashSet and Instant::now with no exemption.
    assert_eq!(run("determinism_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn determinism_alias_pins_the_renamed_sources() {
    assert_eq!(
        run("determinism_alias.rs", "fixture"),
        [
            "fixtures/determinism_alias.rs:4: determinism: `HashMap` has nondeterministic \
             iteration order; use an ordered structure or exempt with a justification",
            "fixtures/determinism_alias.rs:8: determinism: `Clock::now()` (alias of \
             `Instant::now()`) reads the wall clock; results must not depend on it",
            "fixtures/determinism_alias.rs:9: determinism: `Map` (alias of `HashMap`) has \
             nondeterministic iteration order; use an ordered structure or exempt with a \
             justification",
        ]
    );
}

#[test]
fn packed_bad_pins_overlap_and_width_disagreement() {
    assert_eq!(
        run("packed_bad.rs", "fixture"),
        [
            "fixtures/packed_bad.rs:4: packed-layout: `tag` (bits 0..16) and `CTR_SHIFT` (bits \
             14..17) of the u32 packed word overlap",
            "fixtures/packed_bad.rs:4: packed-layout: pack writes 3 bits at bit 14 of the u32 \
             word but `CTR_SHIFT` reads 2",
        ]
    );
}

#[test]
fn packed_exempted_twin_is_clean() {
    assert_eq!(run("packed_exempt.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn cfg_gate_bad_pins_the_ungated_call() {
    assert_eq!(
        run("cfg_gate_bad.rs", "fixture"),
        ["fixtures/cfg_gate_bad.rs:10: cfg-gate-consistency: `obs_only_helper` is defined only \
          behind the `obs` feature but is referenced from code compiled without it"]
    );
}

#[test]
fn cfg_gate_twin_definition_is_clean() {
    assert_eq!(run("cfg_gate_twin.rs", "fixture"), [] as [&str; 0]);
}

#[test]
fn exclusion_audit_bad_pins_all_three_broken_proofs() {
    assert_eq!(
        run("exclusion_audit_bad.rs", "fixture"),
        [
            "fixtures/exclusion_audit_bad.rs:6: fingerprint-exclusion-audit: \
             fingerprint-coverage exemption must cite the equivalence test proving the \
             exclusion safe: append `; proven-by <file>` to the reason",
            "fixtures/exclusion_audit_bad.rs:8: fingerprint-exclusion-audit: equivalence test \
             `fixtures/no_such_proof.rs` cited by proven-by does not exist",
            "fixtures/exclusion_audit_bad.rs:10: fingerprint-exclusion-audit: equivalence test \
             `fixtures/audit_proof.rs` does not reference the excluded field `hue`",
        ]
    );
}

#[test]
fn dead_pub_bad_pins_the_orphans() {
    assert_eq!(
        run_many(&["dead_pub_bad.rs", "dead_pub_user.rs"], "fixture"),
        [
            "fixtures/dead_pub_bad.rs:9: dead-pub-api: pub fn `orphan_helper` is not \
             referenced outside its defining file by any workspace compilation unit",
            "fixtures/dead_pub_bad.rs:13: dead-pub-api: pub struct `OrphanConfig` is not \
             referenced outside its defining file by any workspace compilation unit",
        ]
    );
}

#[test]
fn exemption_hygiene_violations_are_findings() {
    assert_eq!(
        run("exemption_bad.rs", "fixture"),
        [
            "fixtures/exemption_bad.rs:4: exemption: exemption for `determinism` must carry a \
             non-empty reason",
            "fixtures/exemption_bad.rs:5: exemption: exemption names unknown lint `made-up-lint`",
            "fixtures/exemption_bad.rs:6: exemption: exemption for `determinism` does not \
             suppress any finding",
            "fixtures/exemption_bad.rs:7: exemption: expected `(<lint>, <reason>)` after \
             `exempt`",
            "fixtures/exemption_bad.rs:8: exemption: unclosed `(` in exemption directive",
            "fixtures/exemption_bad.rs:9: exemption: unknown `lint:` directive (expected \
             `exempt(<lint>, <reason>)`, `exempt-file(...)` or `json-reader(<Type>)`)",
        ]
    );
}

#[test]
fn exempt_file_covers_the_whole_file() {
    let text = "use std::collections::HashMap;\n\
                // lint: exempt-file(determinism, fixture-wide justification)\n\
                pub fn build() -> HashMap<u64, u64> {\n    HashMap::new()\n}\n";
    let findings = lint_sources_with_root(
        vec![SourceFile {
            path: "inline.rs".to_string(),
            crate_name: "fixture".to_string(),
            tree: Tree::Src,
            text: text.to_string(),
        }],
        None,
    );
    assert!(findings.iter().all(|f| f.exempted), "{findings:?}");
    // The exempted findings stay visible to `--json` consumers.
    assert_eq!(findings.iter().filter(|f| f.exempted).count(), 3);
}

#[test]
fn tests_tree_skips_coverage_lints_but_keeps_determinism() {
    // The fingerprint fixture is fine as an integration test (coverage
    // lints bind library code only)...
    let files = vec![SourceFile {
        path: "tests/fp.rs".to_string(),
        crate_name: "fixture".to_string(),
        tree: Tree::Tests,
        text: read_fixture("fingerprint_bad.rs"),
    }];
    assert!(lint_sources_with_root(files, None).is_empty());
    // ...but nondeterminism is flagged in every tree.
    let files = vec![SourceFile {
        path: "tests/det.rs".to_string(),
        crate_name: "fixture".to_string(),
        tree: Tree::Tests,
        text: read_fixture("determinism_bad.rs"),
    }];
    let diags = lint_sources_with_root(files, None);
    assert_eq!(diags.iter().filter(|f| f.diag.lint == "determinism").count(), 4, "{diags:?}");
}

//! Fixture: wall-clock reads and hash-order collections.

use std::collections::HashMap;
use std::time::Instant;

pub fn measure() -> u64 {
    let t0 = Instant::now();
    let mut seen: HashMap<u64, u64> = HashMap::new();
    seen.insert(1, 2);
    t0.elapsed().as_nanos() as u64 + seen.len() as u64
}

pub fn stamp() -> bool {
    std::time::SystemTime::now().elapsed().is_ok()
}

//! Exempted twin of `bin_bad.rs`: the asymmetric constants are declared
//! deliberate.

const F_MEM: u8 = 1 << 0;
const F_GHOST: u8 = 1 << 1;
const END_MARK: u8 = 0xFF;

// lint: exempt(bin-roundtrip, END_MARK is a read-side sentinel never written by this encoder)
pub fn encode_rec(flags: u8, out: &mut Vec<u8>) {
    out.push(flags & (F_MEM | F_GHOST));
}

// lint: exempt(bin-roundtrip, F_GHOST is reserved for future writers and ignored when reading)
pub fn decode_rec(bytes: &[u8]) -> u8 {
    let flags = bytes[0];
    if flags == END_MARK {
        return 0;
    }
    flags & F_MEM
}

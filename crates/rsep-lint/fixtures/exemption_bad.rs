//! Fixture: exemption-hygiene violations — empty reason, unknown lint,
//! unused exemption, missing parens, unclosed parens, unknown directive.

// lint: exempt(determinism, )
// lint: exempt(made-up-lint, some reason)
// lint: exempt(determinism, nothing below ever trips this)
// lint: exempt determinism
// lint: exempt(determinism
// lint: suppress(determinism, wrong verb)
pub fn clean() {}

//! Fixture: `used_helper` is consumed by another compilation unit
//! (dead_pub_user.rs); `orphan_helper` and `OrphanConfig` are pub surface
//! nothing references.

pub fn used_helper() -> u64 {
    41
}

pub fn orphan_helper() -> u64 {
    42
}

pub struct OrphanConfig {
    pub ways: u32,
}

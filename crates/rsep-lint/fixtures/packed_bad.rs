//! Fixture: a packed-word cluster where the counter field overlaps the tag
//! and the unpack side disagrees with the pack side about the field width.

const CTR_SHIFT: u32 = 14;
const USEFUL_SHIFT: u32 = 17;

fn pack(tag: u16, ctr: u8, useful: u8) -> u32 {
    u32::from(tag)
        | ((u32::from(ctr) & 0b111) << CTR_SHIFT)
        | ((u32::from(useful) & 0b11) << USEFUL_SHIFT)
}

fn unpack_ctr(entry: u32) -> u8 {
    ((entry >> CTR_SHIFT) & 0b11) as u8
}

fn unpack_useful(entry: u32) -> u8 {
    ((entry >> USEFUL_SHIFT) & 0b11) as u8
}

//! Fixture: the hazards carry documented exemptions, and test-only code is
//! out of scope entirely.

// lint: exempt(determinism, keyed lookup only; the map is never iterated)
use std::collections::HashMap;

// lint: exempt(determinism, keyed lookup only; the map is never iterated)
pub fn build() -> HashMap<u64, u64> {
    // lint: exempt(determinism, keyed lookup only; the map is never iterated)
    HashMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::time::Instant;

    #[test]
    fn helpers_may_use_anything() {
        let t0 = Instant::now();
        let mut s = HashSet::new();
        s.insert(t0.elapsed().as_nanos());
        assert_eq!(s.len(), 1);
    }
}

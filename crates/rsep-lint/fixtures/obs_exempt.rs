//! Fixture: the ungated reference carries a documented exemption.

pub fn record(core: &mut Core) {
    obs! {
        core.attribution.cycles += 1;
    }
    // lint: exempt(obs-gate, snapshot type is always compiled for testability)
    let snapshot = StageAttribution::default();
    drop(snapshot);
}

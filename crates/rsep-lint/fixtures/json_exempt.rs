//! Fixture: a write-only routing tag with a documented exemption.

impl Report {
    pub fn to_json(&self) -> Json {
        // lint: exempt(json-roundtrip, the kind tag routes lines upstream and is not a field)
        obj(&[("kind", "report"), ("cycles", self.cycles)])
    }

    pub fn from_json(json: &Json) -> Report {
        Report { cycles: get(json, "cycles") }
    }
}

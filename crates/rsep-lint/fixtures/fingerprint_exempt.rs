//! Fixture: the missing field carries a documented exemption.

pub struct Knobs {
    pub width: u32,
    // lint: exempt(fingerprint-coverage, depth is derived from width at load time; proven-by fixtures/fingerprint_proof.rs)
    pub depth: u32,
}

impl Fingerprint for Knobs {
    fn fingerprint(&self, h: &mut Fnv) {
        self.width.fingerprint(h);
    }
}

//! Fixture: the `#[cfg(not(feature = "obs"))]` twin pattern — the name has
//! an unconditional definition in the non-obs build, so calling it from
//! ungated code is safe and must not be flagged.

#[cfg(feature = "obs")]
pub fn counted_retire() -> u64 {
    7
}

#[cfg(not(feature = "obs"))]
pub fn counted_retire() -> u64 {
    0
}

pub fn caller() -> u64 {
    counted_retire()
}

//! Fixture: `width` is hashed, `depth` is not.

pub struct Knobs {
    pub width: u32,
    pub depth: u32,
}

impl Fingerprint for Knobs {
    fn fingerprint(&self, h: &mut Fnv) {
        self.width.fingerprint(h);
    }
}

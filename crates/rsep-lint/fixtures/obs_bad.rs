//! Fixture: one `obs!`-wrapped reference, one `#[cfg(feature = "obs")]`
//! item, and one ungated reference that must be flagged.

pub fn record(core: &mut Core) {
    obs! {
        core.attribution.cycles += 1;
    }
    let snapshot = StageAttribution::default();
    drop(snapshot);
}

#[cfg(feature = "obs")]
pub fn gated() -> WorkCounts {
    WorkCounts::default()
}

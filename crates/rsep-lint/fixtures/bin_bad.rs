//! Fixture: the encoder packs `F_GHOST` that the decoder never tests, and
//! the decoder checks `END_MARK` that the encoder never writes. The
//! matched `F_MEM` flag and the lone `encode_orphan` are clean.

const F_MEM: u8 = 1 << 0;
const F_GHOST: u8 = 1 << 1;
const END_MARK: u8 = 0xFF;

pub fn encode_rec(flags: u8, out: &mut Vec<u8>) {
    out.push(flags & (F_MEM | F_GHOST));
}

pub fn decode_rec(bytes: &[u8]) -> u8 {
    let flags = bytes[0];
    if flags == END_MARK {
        return 0;
    }
    flags & F_MEM
}

pub fn encode_orphan(out: &mut Vec<u8>) {
    out.push(END_MARK);
}

//! Fixture: `written` is emitted but never read back; `ghost` is read but
//! never emitted; the free-function pair leaks `extra`.

impl Report {
    pub fn to_json(&self) -> Json {
        obj(&[("cycles", self.cycles), ("written", self.written)])
    }

    pub fn from_json(json: &Json) -> Report {
        Report { cycles: get(json, "cycles"), written: 0, ghost: get(json, "ghost") }
    }
}

fn stats_to_json(s: &Stats) -> Json {
    obj(&[("ipc", s.ipc)])
}

fn stats_from_json(json: &Json) -> Stats {
    Stats { ipc: get(json, "ipc"), extra: get(json, "extra") }
}

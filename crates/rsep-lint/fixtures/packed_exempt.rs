//! Fixture: the overlapping layout of packed_bad.rs with a documented
//! exemption on the shift constant every finding anchors at.

// lint: exempt(packed-layout, deliberate tag/ctr aliasing models the paper's shared storage trick)
const CTR_SHIFT: u32 = 14;
const USEFUL_SHIFT: u32 = 17;

fn pack(tag: u16, ctr: u8, useful: u8) -> u32 {
    u32::from(tag)
        | ((u32::from(ctr) & 0b111) << CTR_SHIFT)
        | ((u32::from(useful) & 0b11) << USEFUL_SHIFT)
}

fn unpack_ctr(entry: u32) -> u8 {
    ((entry >> CTR_SHIFT) & 0b11) as u8
}

fn unpack_useful(entry: u32) -> u8 {
    ((entry >> USEFUL_SHIFT) & 0b11) as u8
}

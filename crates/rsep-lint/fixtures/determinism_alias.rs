//! Fixture: `use ... as` renames do not launder nondeterminism — the alias
//! is tracked back to the underlying type.

use std::collections::HashMap as Map;
use std::time::Instant as Clock;

pub fn measure() -> u64 {
    let t0 = Clock::now();
    let mut seen: Map<u64, u64> = Map::new();
    seen.insert(1, 2);
    t0.elapsed().as_nanos() as u64 + seen.len() as u64
}

//! Fixture: an obs-only helper called from unconditionally-compiled code —
//! the exact shape that breaks `cargo build` without `--features obs`.

#[cfg(feature = "obs")]
pub fn obs_only_helper() -> u64 {
    7
}

pub fn caller() -> u64 {
    obs_only_helper()
}

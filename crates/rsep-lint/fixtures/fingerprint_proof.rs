//! Fixture: the equivalence test cited by fingerprint_exempt.rs. It must
//! reference the excluded field (`depth`) to satisfy the
//! fingerprint-exclusion-audit lint.

#[test]
fn depth_is_always_derived_from_width() {
    let knobs = Knobs::from_width(32);
    assert_eq!(knobs.depth, derived_depth(knobs.width));
}

//! Fixture: the external consumer that keeps `used_helper` alive. The
//! consumer itself is private, so it is not pub surface to audit.

fn drive() -> u64 {
    used_helper() + 1
}

//! Fixture: both merge-coverage findings carry documented exemptions.

pub struct SimStats {
    pub stalls: u64,
    // lint: exempt(merge-coverage, flushes is recomputed from stalls after merging)
    pub flushes: u64,
}

impl SimStats {
    pub fn merge(&mut self, other: &SimStats) {
        self.stalls += other.stalls;
    }
}

// lint: exempt(merge-coverage, per-run scratch stats; never folded across shards)
pub struct CacheStats {
    pub hits: u64,
}

//! Fixture: `stalls` is folded by `merge()`, `flushes` is not, and
//! `CacheStats` (a stats-family name) has no `merge()` at all.

pub struct SimStats {
    pub stalls: u64,
    pub flushes: u64,
}

impl SimStats {
    pub fn merge(&mut self, other: &SimStats) {
        self.stalls += other.stalls;
    }
}

pub struct CacheStats {
    pub hits: u64,
}

//! Fixture: a write-only record paired with its reader via
//! `// lint: json-reader(<Type>)`. The reader consumes a key the writer
//! never emits.

pub struct Rec {
    pub alpha: u64,
    pub beta: u64,
}

impl Rec {
    pub fn to_json(&self) -> Vec<(String, u64)> {
        vec![("alpha".into(), self.alpha), ("beta".into(), self.beta)]
    }
}

// lint: json-reader(Rec)
pub fn check(map: &Map) -> u64 {
    map.get("alpha").copied().unwrap_or(0) + map.get("gamma").copied().unwrap_or(0)
}

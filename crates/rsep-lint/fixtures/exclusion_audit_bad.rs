//! Fixture: three broken exclusion proofs — no `proven-by` clause, a cited
//! file that does not exist, and a cited file that never mentions the
//! excluded field — plus one well-formed citation (`tint`).

pub struct Palette {
    // lint: exempt(fingerprint-coverage, presentation only)
    pub color: u32,
    // lint: exempt(fingerprint-coverage, presentation only; proven-by fixtures/no_such_proof.rs)
    pub shade: u32,
    // lint: exempt(fingerprint-coverage, presentation only; proven-by fixtures/audit_proof.rs)
    pub hue: u32,
    // lint: exempt(fingerprint-coverage, presentation only; proven-by fixtures/audit_proof.rs)
    pub tint: u32,
}

impl Fingerprint for Palette {
    fn fingerprint(&self, _h: &mut Fnv) {}
}

//! Fixture: equivalence test cited by exclusion_audit_bad.rs. References
//! one excluded field (`tint`, so its citation passes) but not the other.

#[test]
fn tint_never_reaches_the_cache_key() {
    let tint = 0xff_u32;
    assert_eq!(tint & 0xff, 0xff);
}

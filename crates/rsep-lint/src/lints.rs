//! The lint passes.
//!
//! Each pass takes the full set of lexed+parsed [`Unit`]s (cross-file,
//! because a struct and its `impl Fingerprint` may live in different files)
//! and returns raw diagnostics; the engine applies `#[cfg(test)]` filtering
//! and exemption suppression afterwards. The cross-file passes
//! (`cfg-gate-consistency`, `dead-pub-api`) run as queries over the
//! [`Graph`] built in pass 1; `packed-layout` lives in [`crate::packed`].

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::graph::{Gate, Graph};
use crate::lexer::TokKind;
use crate::{Diagnostic, Tree, Unit};

/// The stats family whose `merge()` coverage is enforced: everything a
/// sharded/checkpointed campaign folds together. A field missing from
/// `merge()` silently drops data on every shard merge.
pub const STATS_FAMILY: [&str; 10] = [
    "CacheStats",
    "CoverageCounts",
    "FetchCycles",
    "IssueCycles",
    "PredictorStats",
    "RedundancyReport",
    "RenameCycles",
    "SimStats",
    "StageAttribution",
    "WorkCounts",
];

/// Attribution types that must stay behind the `obs` gate in `rsep-uarch`
/// (the zero-overhead claim of the observability layer).
pub const OBS_TYPES: [&str; 6] =
    ["FetchCycles", "IssueCycles", "RenameBlock", "RenameCycles", "StageAttribution", "WorkCounts"];

fn ident_of(kind: &TokKind) -> Option<&str> {
    match kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

/// Idents appearing in a set of body token ranges.
fn body_idents<'a>(u: &'a Unit, bodies: &[(usize, usize)]) -> BTreeSet<&'a str> {
    let mut set = BTreeSet::new();
    for &(b0, b1) in bodies {
        for t in &u.tokens[b0..b1] {
            if let Some(s) = ident_of(&t.kind) {
                set.insert(s);
            }
        }
    }
    set
}

/// **fingerprint-coverage** — every named field of a struct with a manual
/// `impl Fingerprint` must be referenced in its `fingerprint()` body. A
/// field left out of the hash means two configs that differ only in that
/// field share a `CellKey`, and the result cache serves one config's
/// numbers for the other.
pub fn fingerprint_coverage(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let struct_map = struct_index(units);
    for u in units.iter().filter(|u| u.tree == Tree::Src) {
        for im in &u.parsed.impls {
            if im.trait_name.as_deref() != Some("Fingerprint") {
                continue;
            }
            let Some(&(ui, si)) = struct_map.get(im.type_name.as_str()) else { continue };
            let Some(f) = im.fns.iter().find(|f| f.name == "fingerprint" && f.body.is_some())
            else {
                continue;
            };
            let body = body_idents(u, &[f.body.unwrap()]);
            let def_unit = &units[ui];
            let sd = &def_unit.parsed.structs[si];
            for field in &sd.fields {
                if !body.contains(field.name.as_str()) {
                    diags.push(Diagnostic::new(
                        &def_unit.path,
                        field.line,
                        "fingerprint-coverage",
                        format!(
                            "field `{}` of `{}` is not referenced in its `fingerprint()` body",
                            field.name, sd.name
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// **merge-coverage** — every field of the [`STATS_FAMILY`] must appear in
/// that type's `merge()`.
pub fn merge_coverage(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let struct_map = struct_index(units);
    for name in STATS_FAMILY {
        let Some(&(ui, si)) = struct_map.get(name) else { continue };
        let def_unit = &units[ui];
        let sd = &def_unit.parsed.structs[si];
        let mut merge_bodies: Vec<(&Unit, (usize, usize))> = Vec::new();
        for u in units.iter().filter(|u| u.tree == Tree::Src) {
            for im in &u.parsed.impls {
                if im.type_name != name {
                    continue;
                }
                for f in &im.fns {
                    if f.name == "merge" {
                        if let Some(b) = f.body {
                            merge_bodies.push((u, b));
                        }
                    }
                }
            }
        }
        if merge_bodies.is_empty() {
            diags.push(Diagnostic::new(
                &def_unit.path,
                sd.line,
                "merge-coverage",
                format!("`{name}` is in the stats family but has no `merge()`"),
            ));
            continue;
        }
        let mut idents = BTreeSet::new();
        for (u, b) in &merge_bodies {
            idents.extend(body_idents(u, &[*b]));
        }
        for field in &sd.fields {
            if !idents.contains(field.name.as_str()) {
                diags.push(Diagnostic::new(
                    &def_unit.path,
                    field.line,
                    "merge-coverage",
                    format!("field `{}` of `{name}` does not appear in its `merge()`", field.name),
                ));
            }
        }
    }
    diags
}

/// `ALL_CAPS`-with-underscore identifier: the naming shape of a binary
/// layout constant (`F_MEM`, `FORMAT_MAJOR`, `MAX_SOURCES`). Plain
/// one-word consts like `ALL` are excluded — they name tables, not wire
/// layout.
fn is_layout_const(name: &str) -> bool {
    let mut first = true;
    let mut has_underscore = false;
    for c in name.chars() {
        if first {
            if !c.is_ascii_uppercase() {
                return false;
            }
            first = false;
        } else if c == '_' {
            has_underscore = true;
        } else if !c.is_ascii_uppercase() && !c.is_ascii_digit() {
            return false;
        }
    }
    has_underscore && !name.ends_with('_') && !name.contains("__")
}

/// Layout constants referenced by one body range.
fn layout_consts(u: &Unit, body: (usize, usize)) -> BTreeSet<&str> {
    body_idents(u, &[body]).into_iter().filter(|n| is_layout_const(n)).collect()
}

/// **bin-roundtrip** — binary-codec symmetry. An `encode_<x>` /
/// `decode_<x>` free-function pair in one file is a two-sided wire codec;
/// every layout constant (an `ALL_CAPS` identifier with an underscore,
/// e.g. `F_MEM`, `FORMAT_MAJOR`) one side depends on must be referenced
/// by the other. A flag byte the writer packs but the reader never tests
/// — or a chunk id the reader skips that no writer emits — is a silently
/// skewed on-disk format that round-trip tests with matched halves cannot
/// catch. Functions with only one side present are skipped.
pub fn bin_roundtrip(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for u in units {
        if u.tree != Tree::Src {
            continue;
        }
        type Side = Option<((usize, usize), usize)>;
        let mut pairs: BTreeMap<&str, (Side, Side)> = BTreeMap::new();
        for f in &u.parsed.free_fns {
            let Some(b) = f.body else { continue };
            if let Some(p) = f.name.strip_prefix("encode_") {
                pairs.entry(p).or_default().0.get_or_insert((b, f.line));
            } else if let Some(p) = f.name.strip_prefix("decode_") {
                pairs.entry(p).or_default().1.get_or_insert((b, f.line));
            }
        }
        for (name, sides) in pairs {
            let (Some((enc, enc_line)), Some((dec, dec_line))) = sides else { continue };
            let enc_consts = layout_consts(u, enc);
            let dec_consts = layout_consts(u, dec);
            for c in enc_consts.difference(&dec_consts) {
                diags.push(Diagnostic::new(
                    &u.path,
                    dec_line,
                    "bin-roundtrip",
                    format!(
                        "`encode_{name}` uses layout constant `{c}` but `decode_{name}` \
                         never references it"
                    ),
                ));
            }
            for c in dec_consts.difference(&enc_consts) {
                diags.push(Diagnostic::new(
                    &u.path,
                    enc_line,
                    "bin-roundtrip",
                    format!(
                        "`decode_{name}` uses layout constant `{c}` but `encode_{name}` \
                         never references it"
                    ),
                ));
            }
        }
    }
    diags
}

/// **json-roundtrip** — string keys emitted by a `to_json`/`to_json_value`
/// must be read by the paired `from_json` and vice versa. Pairing is
/// workspace-wide: impl methods pair by type name, free functions pair by
/// the `<prefix>_to_json` / `<prefix>_from_json` naming convention, even
/// when writer and reader live in different crates. Types with only one
/// side (e.g. write-only bench records) are skipped — unless a
/// `// lint: json-reader(<Type>)` declaration pairs a consumer with them
/// (see [`json_reader_checks`]).
pub fn json_roundtrip(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let pairs = json_pairs(units);
    for (name, (tos, froms)) in pairs {
        if tos.is_empty() || froms.is_empty() {
            continue;
        }
        let emitted = multi_unit_keys(units, &tos);
        let consumed = multi_unit_keys(units, &froms);
        for (key, &(ui, line)) in &emitted {
            if !consumed.contains_key(key.as_str()) {
                diags.push(Diagnostic::new(
                    &units[ui].path,
                    line,
                    "json-roundtrip",
                    format!(
                        "key \"{key}\" is emitted by `{name}`'s to_json but never read by \
                         its from_json"
                    ),
                ));
            }
        }
        for (key, &(ui, line)) in &consumed {
            if !emitted.contains_key(key.as_str()) {
                diags.push(Diagnostic::new(
                    &units[ui].path,
                    line,
                    "json-roundtrip",
                    format!(
                        "key \"{key}\" is read by `{name}`'s from_json but never emitted by \
                         its to_json"
                    ),
                ));
            }
        }
    }
    diags
}

/// Writer/reader body ranges per pairing name, across all `Src` units.
type Sides = (Vec<(usize, (usize, usize))>, Vec<(usize, (usize, usize))>);
fn json_pairs(units: &[Unit]) -> BTreeMap<String, Sides> {
    let mut pairs: BTreeMap<String, Sides> = BTreeMap::new();
    for (ui, u) in units.iter().enumerate() {
        if u.tree != Tree::Src {
            continue;
        }
        for im in &u.parsed.impls {
            for f in &im.fns {
                let Some(b) = f.body else { continue };
                match f.name.as_str() {
                    "to_json" | "to_json_value" => {
                        pairs.entry(im.type_name.clone()).or_default().0.push((ui, b));
                    }
                    "from_json" => pairs.entry(im.type_name.clone()).or_default().1.push((ui, b)),
                    _ => {}
                }
            }
        }
        for f in &u.parsed.free_fns {
            let Some(b) = f.body else { continue };
            if let Some(p) = f.name.strip_suffix("_to_json") {
                pairs.entry(p.to_string()).or_default().0.push((ui, b));
            } else if let Some(p) = f.name.strip_suffix("_from_json") {
                pairs.entry(p.to_string()).or_default().1.push((ui, b));
            }
        }
    }
    pairs
}

/// Like [`string_keys`] but over bodies spread across several units; the
/// value is `(unit index, first line)`.
fn multi_unit_keys(
    units: &[Unit],
    bodies: &[(usize, (usize, usize))],
) -> BTreeMap<String, (usize, usize)> {
    let mut keys = BTreeMap::new();
    for &(ui, b) in bodies {
        for (k, line) in string_keys(&units[ui], &[b]) {
            keys.entry(k).or_insert((ui, line));
        }
    }
    keys
}

/// The `// lint: json-reader(<Type>)` half of cross-crate json-roundtrip:
/// every string literal the declared function passes to a `get(...)` must
/// be a key the named writer actually emits. This pairs one-directional
/// readers (the CI bench gate) with write-only producers (`BenchRecord`)
/// across crate boundaries.
pub fn json_reader_checks(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let pairs = json_pairs(units);
    for u in units {
        for rd in &u.readers {
            let writer_keys = match pairs.get(&rd.target) {
                Some((tos, _)) if !tos.is_empty() => multi_unit_keys(units, tos),
                _ => {
                    diags.push(Diagnostic::new(
                        &u.path,
                        rd.line,
                        crate::EXEMPTION_LINT,
                        format!(
                            "json-reader names `{}` but no `{}` to_json writer exists in the \
                             workspace",
                            rd.target, rd.target
                        ),
                    ));
                    continue;
                }
            };
            // The declaration covers the next function definition.
            let split = u.tokens.partition_point(|t| t.line <= rd.line);
            let target_fn = u
                .parsed
                .free_fns
                .iter()
                .chain(u.parsed.impls.iter().flat_map(|im| im.fns.iter()))
                .filter(|f| f.tok >= split && f.body.is_some())
                .min_by_key(|f| f.tok);
            let Some(f) = target_fn else {
                diags.push(Diagnostic::new(
                    &u.path,
                    rd.line,
                    crate::EXEMPTION_LINT,
                    "json-reader declaration is not followed by a function".to_string(),
                ));
                continue;
            };
            let (b0, b1) = f.body.unwrap();
            let mut k = b0;
            while k + 2 < b1 {
                if ident_of(&u.tokens[k].kind) == Some("get")
                    && matches!(u.tokens[k + 1].kind, TokKind::Punct('('))
                {
                    if let TokKind::Str(key) = &u.tokens[k + 2].kind {
                        if !writer_keys.contains_key(key.as_str()) {
                            diags.push(Diagnostic::new(
                                &u.path,
                                u.tokens[k + 2].line,
                                "json-roundtrip",
                                format!(
                                    "key \"{key}\" is read by `{}` (json-reader of `{}`) but \
                                     never emitted by `{}`'s to_json",
                                    f.name, rd.target, rd.target
                                ),
                            ));
                        }
                    }
                }
                k += 1;
            }
        }
    }
    diags
}

/// **obs-gate** — in `rsep-uarch`, attribution types must only be named
/// inside `obs! { ... }` or under `#[cfg(feature = "obs")]`.
pub fn obs_gate(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for u in units {
        if u.crate_name != "rsep-uarch" {
            continue;
        }
        let spans = &u.parsed.obs_tokens;
        let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
        for (ti, t) in u.tokens.iter().enumerate() {
            let Some(s) = ident_of(&t.kind) else { continue };
            if !OBS_TYPES.contains(&s) {
                continue;
            }
            if spans.iter().any(|&(a, b)| a <= ti && ti <= b) {
                continue;
            }
            if seen.insert((t.line, s)) {
                diags.push(Diagnostic::new(
                    &u.path,
                    t.line,
                    "obs-gate",
                    format!("`{s}` referenced outside `obs!` / `#[cfg(feature = \"obs\")]`"),
                ));
            }
        }
    }
    diags
}

/// Nondeterminism sources the determinism lint knows about.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

/// **determinism** — wall-clock reads and hash-order collections flagged
/// everywhere: campaign results must be bit-identical across machines,
/// thread counts and shardings, so nondeterminism sources need an explicit
/// justification. Matches bare identifiers, fully-qualified paths
/// (`std::collections::HashMap`, `std::time::Instant::now()`) and `use ...
/// as` aliases — renaming `Instant` to `Clock` does not launder the
/// wall-clock read.
pub fn determinism(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for u in units {
        // `use std::time::Instant as Clock;` — track the alias.
        let mut aliases: BTreeMap<&str, &str> = BTreeMap::new();
        for (ti, t) in u.tokens.iter().enumerate() {
            let Some(s) = ident_of(&t.kind) else { continue };
            if !HASH_TYPES.contains(&s) && !CLOCK_TYPES.contains(&s) {
                continue;
            }
            if u.tokens.get(ti + 1).and_then(|t| ident_of(&t.kind)) == Some("as") {
                if let Some(alias) = u.tokens.get(ti + 2).and_then(|t| ident_of(&t.kind)) {
                    aliases.insert(alias, s);
                }
            }
        }
        let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
        for (ti, t) in u.tokens.iter().enumerate() {
            let Some(s) = ident_of(&t.kind) else { continue };
            // The alias name itself (in the `use ... as Alias` position) is
            // a definition, not a use.
            let prev_is_as =
                ti >= 1 && u.tokens.get(ti - 1).and_then(|t| ident_of(&t.kind)) == Some("as");
            let (effective, alias_of) = match aliases.get(s) {
                Some(&orig) if !prev_is_as => (orig, Some(s)),
                _ => (s, None),
            };
            if HASH_TYPES.contains(&effective) && (s == effective || alias_of.is_some()) {
                if seen.insert((t.line, s)) {
                    let label = match alias_of {
                        Some(a) => format!("`{a}` (alias of `{effective}`)"),
                        None => format!("`{s}`"),
                    };
                    diags.push(Diagnostic::new(
                        &u.path,
                        t.line,
                        "determinism",
                        format!(
                            "{label} has nondeterministic iteration order; use an ordered \
                             structure or exempt with a justification"
                        ),
                    ));
                }
                continue;
            }
            if CLOCK_TYPES.contains(&effective)
                && (s == effective || alias_of.is_some())
                && matches!(u.tokens.get(ti + 1).map(|t| &t.kind), Some(TokKind::Punct(':')))
                && matches!(u.tokens.get(ti + 2).map(|t| &t.kind), Some(TokKind::Punct(':')))
                && u.tokens.get(ti + 3).and_then(|t| ident_of(&t.kind)) == Some("now")
                && seen.insert((t.line, s))
            {
                let label = match alias_of {
                    Some(a) => format!("`{a}::now()` (alias of `{effective}::now()`)"),
                    None => format!("`{s}::now()`"),
                };
                diags.push(Diagnostic::new(
                    &u.path,
                    t.line,
                    "determinism",
                    format!("{label} reads the wall clock; results must not depend on it"),
                ));
            }
        }
    }
    diags
}

/// **cfg-gate-consistency** — a symbol defined only behind the `obs`
/// feature must not be referenced from unconditionally-compiled code, in
/// any crate: that is exactly the class of break a plain `cargo build`
/// (without `--features obs`) hits. Symbols that also have an
/// unconditional definition (the `#[cfg(not(feature = "obs"))]` twin
/// pattern) are safe from every site. Resolution is visibility-aware: a
/// definition inside a test/bench/bin compilation unit is only visible to
/// reference sites in that same unit, so a test-local helper cannot gate a
/// same-named local variable in another crate.
pub fn cfg_gate_consistency(units: &[Unit], graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (name, ids) in &graph.by_name {
        if ids.iter().all(|&i| graph.symbols[i].gate != Gate::Obs) {
            continue;
        }
        let Some(sites) = graph.refs.get(name) else { continue };
        for site in sites {
            if site.gate != Gate::Unconditional {
                continue;
            }
            let site_key = &units[site.unit].unit_key;
            let visible = |i: &&usize| {
                let sym = &graph.symbols[**i];
                let key = &units[sym.unit].unit_key;
                key.starts_with("crate:") || key == site_key
            };
            let any_obs = ids.iter().filter(visible).any(|&i| graph.symbols[i].gate == Gate::Obs);
            let any_uncond =
                ids.iter().filter(visible).any(|&i| graph.symbols[i].gate == Gate::Unconditional);
            if !any_obs || any_uncond {
                continue;
            }
            diags.push(Diagnostic::new(
                &units[site.unit].path,
                site.line,
                "cfg-gate-consistency",
                format!(
                    "`{name}` is defined only behind the `obs` feature but is referenced from \
                     code compiled without it"
                ),
            ));
        }
    }
    diags
}

/// **dead-pub-api** — a `pub` item in a library tree that nothing outside
/// its defining file references (no other crate, binary, test, bench,
/// example — and no sibling module either) is surface area nothing uses:
/// demote it from `pub` or exempt it with its intended consumer.
pub fn dead_pub_api(units: &[Unit], graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for sym in &graph.symbols {
        if !sym.is_pub
            || !sym.top_level
            || sym.kind == "method"
            || sym.gate != Gate::Unconditional
            || sym.name == "main"
            || sym.name.starts_with('_')
        {
            continue;
        }
        let def_unit = &units[sym.unit];
        if !def_unit.unit_key.starts_with("crate:") {
            continue;
        }
        let alive =
            graph.refs.get(&sym.name).is_some_and(|sites| sites.iter().any(|s| s.unit != sym.unit));
        if !alive {
            diags.push(Diagnostic::new(
                &def_unit.path,
                sym.line,
                "dead-pub-api",
                format!(
                    "pub {} `{}` is not referenced outside its defining file by any \
                     workspace compilation unit",
                    sym.kind, sym.name
                ),
            ));
        }
    }
    diags
}

/// **fingerprint-exclusion-audit** — the proof-by-exclusion protocol,
/// machine-checked: every `fingerprint-coverage` exemption must cite the
/// equivalence test that proves the excluded field cannot change results
/// (`; proven-by <file>` in the reason), the cited file must exist, and it
/// must actually reference the excluded field.
pub fn fingerprint_exclusion_audit(units: &[Unit], root: Option<&Path>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let by_path: BTreeMap<&str, usize> =
        units.iter().enumerate().map(|(i, u)| (u.path.as_str(), i)).collect();
    for u in units {
        for d in &u.directives {
            if d.malformed.is_some() || d.lint != "fingerprint-coverage" || d.reason.is_empty() {
                continue;
            }
            if u.parsed.test_lines.iter().any(|&(a, b)| a <= d.line && d.line <= b) {
                continue;
            }
            let mut words = d.reason.split_whitespace();
            let cited = words.by_ref().skip_while(|w| *w != "proven-by").nth(1);
            let Some(cited) = cited else {
                diags.push(Diagnostic::new(
                    &u.path,
                    d.line,
                    "fingerprint-exclusion-audit",
                    "fingerprint-coverage exemption must cite the equivalence test proving the \
                     exclusion safe: append `; proven-by <file>` to the reason"
                        .to_string(),
                ));
                continue;
            };
            // The excluded field: first identifier on the line the
            // directive covers (file-level exemptions have no single field).
            let field = if d.file_level {
                None
            } else {
                let split = u.tokens.partition_point(|t| t.line <= d.line);
                u.tokens.get(split).map(|t| t.line).and_then(|line| {
                    u.tokens[split..].iter().take_while(|t| t.line == line).find_map(|t| {
                        match ident_of(&t.kind) {
                            Some("pub" | "crate" | "super") | None => None,
                            Some(s) => Some(s),
                        }
                    })
                })
            };
            match (by_path.get(cited), root) {
                (Some(&ti), _) => {
                    if let Some(field) = field {
                        let test_unit = &units[ti];
                        let referenced =
                            test_unit.tokens.iter().any(|t| ident_of(&t.kind) == Some(field));
                        if !referenced {
                            diags.push(Diagnostic::new(
                                &u.path,
                                d.line,
                                "fingerprint-exclusion-audit",
                                format!(
                                    "equivalence test `{cited}` does not reference the excluded \
                                     field `{field}`"
                                ),
                            ));
                        }
                    }
                }
                (None, Some(root)) if root.join(cited).is_file() => {
                    if let Some(field) = field {
                        let text = std::fs::read_to_string(root.join(cited)).unwrap_or_default();
                        if !contains_ident(&text, field) {
                            diags.push(Diagnostic::new(
                                &u.path,
                                d.line,
                                "fingerprint-exclusion-audit",
                                format!(
                                    "equivalence test `{cited}` does not reference the excluded \
                                     field `{field}`"
                                ),
                            ));
                        }
                    }
                }
                _ => {
                    diags.push(Diagnostic::new(
                        &u.path,
                        d.line,
                        "fingerprint-exclusion-audit",
                        format!("equivalence test `{cited}` cited by proven-by does not exist"),
                    ));
                }
            }
        }
    }
    diags
}

/// `needle` appears in `text` with identifier boundaries on both sides.
fn contains_ident(text: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0usize;
    while let Some(pos) = text[start..].find(needle) {
        let at = start + pos;
        let before_ok = !text[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !text[at + needle.len()..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Global struct index: name → (unit index, struct index). Only `Src`
/// trees define lintable structs; the first definition wins, so shadowing
/// test helpers lower in a file cannot hijack a name.
fn struct_index(units: &[Unit]) -> BTreeMap<&str, (usize, usize)> {
    let mut map = BTreeMap::new();
    for (ui, u) in units.iter().enumerate() {
        if u.tree != Tree::Src {
            continue;
        }
        for (si, s) in u.parsed.structs.iter().enumerate() {
            map.entry(s.name.as_str()).or_insert((ui, si));
        }
    }
    map
}

/// Ident-like string literals (JSON keys) in the given body ranges, with
/// the first line each appears on. Literals with spaces or punctuation
/// (error messages, labels) are ignored.
fn string_keys(u: &Unit, bodies: &[(usize, usize)]) -> BTreeMap<String, usize> {
    let mut keys = BTreeMap::new();
    for &(b0, b1) in bodies {
        for t in &u.tokens[b0..b1] {
            if let TokKind::Str(s) = &t.kind {
                let mut cs = s.chars();
                let ident_like = cs.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                    && cs.all(|c| c.is_ascii_alphanumeric() || c == '_');
                if ident_like {
                    keys.entry(s.clone()).or_insert(t.line);
                }
            }
        }
    }
    keys
}

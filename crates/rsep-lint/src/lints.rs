//! The five lint passes.
//!
//! Each pass takes the full set of lexed+parsed [`Unit`]s (cross-file,
//! because a struct and its `impl Fingerprint` may live in different files)
//! and returns raw diagnostics; the engine applies `#[cfg(test)]` filtering
//! and exemption suppression afterwards.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::{Diagnostic, Unit};

/// The stats family whose `merge()` coverage is enforced: everything a
/// sharded/checkpointed campaign folds together. A field missing from
/// `merge()` silently drops data on every shard merge.
pub const STATS_FAMILY: [&str; 10] = [
    "CacheStats",
    "CoverageCounts",
    "FetchCycles",
    "IssueCycles",
    "PredictorStats",
    "RedundancyReport",
    "RenameCycles",
    "SimStats",
    "StageAttribution",
    "WorkCounts",
];

/// Attribution types that must stay behind the `obs` gate in `rsep-uarch`
/// (the zero-overhead claim of the observability layer).
pub const OBS_TYPES: [&str; 6] =
    ["FetchCycles", "IssueCycles", "RenameBlock", "RenameCycles", "StageAttribution", "WorkCounts"];

fn ident_of(kind: &TokKind) -> Option<&str> {
    match kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

/// Idents appearing in a set of body token ranges.
fn body_idents<'a>(u: &'a Unit, bodies: &[(usize, usize)]) -> BTreeSet<&'a str> {
    let mut set = BTreeSet::new();
    for &(b0, b1) in bodies {
        for t in &u.tokens[b0..b1] {
            if let Some(s) = ident_of(&t.kind) {
                set.insert(s);
            }
        }
    }
    set
}

/// **fingerprint-coverage** — every named field of a struct with a manual
/// `impl Fingerprint` must be referenced in its `fingerprint()` body. A
/// field left out of the hash means two configs that differ only in that
/// field share a `CellKey`, and the result cache serves one config's
/// numbers for the other.
pub fn fingerprint_coverage(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let struct_map = struct_index(units);
    for u in units {
        for im in &u.parsed.impls {
            if im.trait_name.as_deref() != Some("Fingerprint") {
                continue;
            }
            let Some(&(ui, si)) = struct_map.get(im.type_name.as_str()) else { continue };
            let Some(f) = im.fns.iter().find(|f| f.name == "fingerprint" && f.body.is_some())
            else {
                continue;
            };
            let body = body_idents(u, &[f.body.unwrap()]);
            let def_unit = &units[ui];
            let sd = &def_unit.parsed.structs[si];
            for field in &sd.fields {
                if !body.contains(field.name.as_str()) {
                    diags.push(Diagnostic::new(
                        &def_unit.path,
                        field.line,
                        "fingerprint-coverage",
                        format!(
                            "field `{}` of `{}` is not referenced in its `fingerprint()` body",
                            field.name, sd.name
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// **merge-coverage** — every field of the [`STATS_FAMILY`] must appear in
/// that type's `merge()`.
pub fn merge_coverage(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let struct_map = struct_index(units);
    for name in STATS_FAMILY {
        let Some(&(ui, si)) = struct_map.get(name) else { continue };
        let def_unit = &units[ui];
        let sd = &def_unit.parsed.structs[si];
        let mut merge_bodies: Vec<(&Unit, (usize, usize))> = Vec::new();
        for u in units {
            for im in &u.parsed.impls {
                if im.type_name != name {
                    continue;
                }
                for f in &im.fns {
                    if f.name == "merge" {
                        if let Some(b) = f.body {
                            merge_bodies.push((u, b));
                        }
                    }
                }
            }
        }
        if merge_bodies.is_empty() {
            diags.push(Diagnostic::new(
                &def_unit.path,
                sd.line,
                "merge-coverage",
                format!("`{name}` is in the stats family but has no `merge()`"),
            ));
            continue;
        }
        let mut idents = BTreeSet::new();
        for (u, b) in &merge_bodies {
            idents.extend(body_idents(u, &[*b]));
        }
        for field in &sd.fields {
            if !idents.contains(field.name.as_str()) {
                diags.push(Diagnostic::new(
                    &def_unit.path,
                    field.line,
                    "merge-coverage",
                    format!("field `{}` of `{name}` does not appear in its `merge()`", field.name),
                ));
            }
        }
    }
    diags
}

/// **json-roundtrip** — string keys emitted by a `to_json`/`to_json_value`
/// must be read by the paired `from_json` and vice versa. Pairing is
/// per-file: impl methods pair by type, free functions pair by the
/// `<prefix>_to_json` / `<prefix>_from_json` naming convention. Types with
/// only one side (e.g. write-only bench records) are skipped.
pub fn json_roundtrip(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for u in units {
        type Sides = (Vec<(usize, usize)>, Vec<(usize, usize)>);
        let mut pairs: BTreeMap<String, Sides> = BTreeMap::new();
        for im in &u.parsed.impls {
            for f in &im.fns {
                let Some(b) = f.body else { continue };
                match f.name.as_str() {
                    "to_json" | "to_json_value" => {
                        pairs.entry(im.type_name.clone()).or_default().0.push(b);
                    }
                    "from_json" => pairs.entry(im.type_name.clone()).or_default().1.push(b),
                    _ => {}
                }
            }
        }
        for f in &u.parsed.free_fns {
            let Some(b) = f.body else { continue };
            if let Some(p) = f.name.strip_suffix("_to_json") {
                pairs.entry(p.to_string()).or_default().0.push(b);
            } else if let Some(p) = f.name.strip_suffix("_from_json") {
                pairs.entry(p.to_string()).or_default().1.push(b);
            }
        }
        for (name, (tos, froms)) in pairs {
            if tos.is_empty() || froms.is_empty() {
                continue;
            }
            let emitted = string_keys(u, &tos);
            let consumed = string_keys(u, &froms);
            for (key, line) in &emitted {
                if !consumed.contains_key(key.as_str()) {
                    diags.push(Diagnostic::new(
                        &u.path,
                        *line,
                        "json-roundtrip",
                        format!(
                            "key \"{key}\" is emitted by `{name}`'s to_json but never read by \
                             its from_json"
                        ),
                    ));
                }
            }
            for (key, line) in &consumed {
                if !emitted.contains_key(key.as_str()) {
                    diags.push(Diagnostic::new(
                        &u.path,
                        *line,
                        "json-roundtrip",
                        format!(
                            "key \"{key}\" is read by `{name}`'s from_json but never emitted by \
                             its to_json"
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// **obs-gate** — in `rsep-uarch`, attribution types must only be named
/// inside `obs! { ... }` or under `#[cfg(feature = "obs")]`.
pub fn obs_gate(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for u in units {
        if u.crate_name != "rsep-uarch" {
            continue;
        }
        let spans = &u.parsed.obs_tokens;
        let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
        for (ti, t) in u.tokens.iter().enumerate() {
            let Some(s) = ident_of(&t.kind) else { continue };
            if !OBS_TYPES.contains(&s) {
                continue;
            }
            if spans.iter().any(|&(a, b)| a <= ti && ti <= b) {
                continue;
            }
            if seen.insert((t.line, s)) {
                diags.push(Diagnostic::new(
                    &u.path,
                    t.line,
                    "obs-gate",
                    format!("`{s}` referenced outside `obs!` / `#[cfg(feature = \"obs\")]`"),
                ));
            }
        }
    }
    diags
}

/// **determinism** — wall-clock reads and hash-order collections flagged
/// everywhere: campaign results must be bit-identical across machines,
/// thread counts and shardings, so nondeterminism sources need an explicit
/// justification.
pub fn determinism(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for u in units {
        let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
        for (ti, t) in u.tokens.iter().enumerate() {
            let Some(s) = ident_of(&t.kind) else { continue };
            if s == "HashMap" || s == "HashSet" {
                if seen.insert((t.line, s)) {
                    diags.push(Diagnostic::new(
                        &u.path,
                        t.line,
                        "determinism",
                        format!(
                            "`{s}` has nondeterministic iteration order; use an ordered \
                             structure or exempt with a justification"
                        ),
                    ));
                }
                continue;
            }
            if (s == "SystemTime" || s == "Instant")
                && matches!(u.tokens.get(ti + 1).map(|t| &t.kind), Some(TokKind::Punct(':')))
                && matches!(u.tokens.get(ti + 2).map(|t| &t.kind), Some(TokKind::Punct(':')))
                && u.tokens.get(ti + 3).and_then(|t| ident_of(&t.kind)) == Some("now")
                && seen.insert((t.line, s))
            {
                diags.push(Diagnostic::new(
                    &u.path,
                    t.line,
                    "determinism",
                    format!("`{s}::now()` reads the wall clock; results must not depend on it"),
                ));
            }
        }
    }
    diags
}

/// Global struct index: name → (unit index, struct index). First definition
/// wins, so shadowing test helpers lower in a file cannot hijack a name.
fn struct_index(units: &[Unit]) -> BTreeMap<&str, (usize, usize)> {
    let mut map = BTreeMap::new();
    for (ui, u) in units.iter().enumerate() {
        for (si, s) in u.parsed.structs.iter().enumerate() {
            map.entry(s.name.as_str()).or_insert((ui, si));
        }
    }
    map
}

/// Ident-like string literals (JSON keys) in the given body ranges, with
/// the first line each appears on. Literals with spaces or punctuation
/// (error messages, labels) are ignored.
fn string_keys(u: &Unit, bodies: &[(usize, usize)]) -> BTreeMap<String, usize> {
    let mut keys = BTreeMap::new();
    for &(b0, b1) in bodies {
        for t in &u.tokens[b0..b1] {
            if let TokKind::Str(s) = &t.kind {
                let mut cs = s.chars();
                let ident_like = cs.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                    && cs.all(|c| c.is_ascii_alphanumeric() || c == '_');
                if ident_like {
                    keys.entry(s.clone()).or_insert(t.line);
                }
            }
        }
    }
    keys
}

//! Item-level parse over the token stream.
//!
//! Extracts what the lints need and nothing more: structs with named
//! fields, `impl` blocks with their methods, free functions (with enough
//! signature detail — visibility, parameter and return types — for the
//! symbol graph and the `packed-layout` pass), `const` definitions with
//! their value token ranges, enum/trait/type-alias names, `#[cfg(test)]`
//! line ranges (excluded from every lint), and the obs-gated token spans
//! (`obs! { ... }` invocations, items under `#[cfg(feature = "obs")]`, and
//! files under `#![cfg(feature = "obs")]`). `macro_rules!` bodies are
//! skipped entirely — macro fragments are not real items.

use crate::lexer::{TokKind, Token};

/// A named struct field.
#[derive(Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name token.
    pub line: usize,
}

/// A struct definition. Tuple and unit structs parse with empty `fields`.
#[derive(Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Token index of the name token.
    pub tok: usize,
    /// `pub` without a restriction (`pub(crate)` etc. count as private).
    pub is_pub: bool,
    /// Named fields in declaration order.
    pub fields: Vec<Field>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding name (`self` parameters are not recorded).
    pub name: String,
    /// Last identifier of the declared type (`u32`, `Json`, ...).
    pub ty: String,
    /// The declared type is a single bare identifier (no `&`, generics or
    /// paths) — the only form the `packed-layout` width rules trust.
    pub simple_ty: bool,
}

/// A function with an optional body given as a `start..end` token index
/// range (exclusive of the closing brace).
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Token index of the name token.
    pub tok: usize,
    /// `pub` without a restriction.
    pub is_pub: bool,
    /// Parameters in declaration order (without `self`).
    pub params: Vec<Param>,
    /// The signature has a `self` receiver (the function is a method).
    pub has_self: bool,
    /// Return type, when it is a single bare identifier (`-> u32`).
    pub ret: Option<String>,
    /// Body token range, `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
}

/// A `const` definition with its value token range (for the
/// `packed-layout` const evaluator).
#[derive(Debug)]
pub struct ConstDef {
    /// Constant name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Token index of the name token.
    pub tok: usize,
    /// `pub` without a restriction.
    pub is_pub: bool,
    /// Defined at brace depth 0 (module top level).
    pub top_level: bool,
    /// Last identifier of the declared type (`u32`, `u64`, ...).
    pub ty: String,
    /// Value token range between `=` and the terminating `;`.
    pub val: (usize, usize),
}

/// A named item the lints only need by name: enums, traits, type aliases.
#[derive(Debug)]
pub struct ItemDecl {
    /// `"enum"`, `"trait"` or `"type"`.
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Token index of the name token.
    pub tok: usize,
    /// `pub` without a restriction.
    pub is_pub: bool,
}

/// An `impl` block: `impl Trait for Type { ... }` or `impl Type { ... }`.
#[derive(Debug)]
pub struct ImplDef {
    /// Last path segment of the trait, when this is a trait impl.
    pub trait_name: Option<String>,
    /// Last path segment of the implementing type.
    pub type_name: String,
    /// Functions defined directly in the block.
    pub fns: Vec<FnDef>,
}

/// Everything the lints need from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// `impl` blocks, in source order.
    pub impls: Vec<ImplDef>,
    /// Free (non-impl) functions, including trait-declaration methods.
    pub free_fns: Vec<FnDef>,
    /// `const` definitions anywhere in the file, in source order.
    pub consts: Vec<ConstDef>,
    /// Enum, trait and type-alias declarations, in source order.
    pub others: Vec<ItemDecl>,
    /// Inclusive line ranges under `#[cfg(test)]`.
    pub test_lines: Vec<(usize, usize)>,
    /// Inclusive token index ranges gated by `obs!` or
    /// `#[cfg(feature = "obs")]` (a `#![cfg(feature = "obs")]` inner
    /// attribute gates the rest of the file).
    pub obs_tokens: Vec<(usize, usize)>,
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

fn as_ident(t: &Token) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

fn is_ident(t: &Token, s: &str) -> bool {
    as_ident(t) == Some(s)
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| is_punct(t, c))
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).and_then(as_ident)
}

/// Index just after the delimiter matching `toks[i]` (which must be `open`).
fn skip_balanced(toks: &[Token], i: usize, open: char, close: char) -> usize {
    let mut depth = 1usize;
    let mut j = i + 1;
    while j < toks.len() && depth > 0 {
        if is_punct(&toks[j], open) {
            depth += 1;
        } else if is_punct(&toks[j], close) {
            depth -= 1;
        }
        j += 1;
    }
    j
}

/// Index just after the `>` matching `toks[i]` (which must be `<`). The `>`
/// of a `->` arrow is not treated as a closer.
fn skip_generics(toks: &[Token], i: usize) -> usize {
    let mut depth = 1i32;
    let mut j = i + 1;
    while j < toks.len() && depth > 0 {
        if is_punct(&toks[j], '<') {
            depth += 1;
        } else if is_punct(&toks[j], '>') && !is_punct(&toks[j - 1], '-') {
            depth -= 1;
        }
        j += 1;
    }
    j
}

/// Visibility of the item a `pub` run precedes. Only unrestricted `pub`
/// makes an item part of the workspace API; `pub(crate)`/`pub(super)` are
/// internal.
fn pub_before(toks: &[Token], k: usize) -> bool {
    // `k` is the index of the item keyword. A `pub(crate)`/`pub(super)`
    // item keyword is preceded by `)` — restricted, never workspace-pub.
    k > 0 && is_ident(&toks[k - 1], "pub")
}

/// Parses a whole token stream into items and gated spans.
pub fn parse_file(toks: &[Token]) -> ParsedFile {
    let mut pf = ParsedFile::default();
    scan_gating(toks, &mut pf);
    scan_consts(toks, &mut pf);
    let mut i = 0usize;
    while i < toks.len() {
        if is_ident(&toks[i], "macro_rules") && punct_at(toks, i + 1, '!') {
            let mut j = i + 2;
            if ident_at(toks, j).is_some() {
                j += 1;
            }
            i = match toks.get(j).map(|t| &t.kind) {
                Some(TokKind::Punct('{')) => skip_balanced(toks, j, '{', '}'),
                Some(TokKind::Punct('(')) => skip_balanced(toks, j, '(', ')'),
                Some(TokKind::Punct('[')) => skip_balanced(toks, j, '[', ']'),
                _ => j,
            };
            continue;
        }
        if is_ident(&toks[i], "struct") {
            if let Some((sd, next)) = parse_struct(toks, i) {
                pf.structs.push(sd);
                i = next;
                continue;
            }
        }
        if is_ident(&toks[i], "impl") {
            if let Some((im, next)) = parse_impl(toks, i) {
                pf.impls.push(im);
                i = next;
                continue;
            }
        }
        if is_ident(&toks[i], "fn") {
            if let Some((f, next)) = parse_fn(toks, i) {
                pf.free_fns.push(f);
                i = next;
                continue;
            }
        }
        if is_ident(&toks[i], "enum") || is_ident(&toks[i], "trait") {
            let kind = if is_ident(&toks[i], "enum") { "enum" } else { "trait" };
            if let Some((decl, body, next)) = parse_named_block(toks, i, kind) {
                // Trait-declaration methods stay visible as free functions
                // (their bodies or signatures matter to the same passes).
                if kind == "trait" {
                    if let Some((b0, b1)) = body {
                        let mut k = b0;
                        while k < b1 {
                            if is_ident(&toks[k], "fn") {
                                if let Some((f, nk)) = parse_fn(toks, k) {
                                    pf.free_fns.push(f);
                                    k = nk;
                                    continue;
                                }
                            }
                            k += 1;
                        }
                    }
                }
                pf.others.push(decl);
                i = next;
                continue;
            }
        }
        if is_ident(&toks[i], "type") {
            if let Some(name) = ident_at(toks, i + 1) {
                pf.others.push(ItemDecl {
                    kind: "type",
                    name: name.to_string(),
                    line: toks[i + 1].line,
                    tok: i + 1,
                    is_pub: pub_before(toks, i),
                });
                let mut j = i + 2;
                while j < toks.len() && !is_punct(&toks[j], ';') {
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    pf
}

/// Body token range of a block item, `None` for bodyless declarations.
type BodyRange = Option<(usize, usize)>;

/// Parses `enum`/`trait` `Name ... { body }`, returning the declaration,
/// the body token range, and the index after the closing brace.
fn parse_named_block(
    toks: &[Token],
    i: usize,
    kind: &'static str,
) -> Option<(ItemDecl, BodyRange, usize)> {
    let name = ident_at(toks, i + 1)?.to_string();
    let decl =
        ItemDecl { kind, name, line: toks[i + 1].line, tok: i + 1, is_pub: pub_before(toks, i) };
    let mut j = i + 2;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    while j < toks.len() && !is_punct(&toks[j], '{') && !is_punct(&toks[j], ';') {
        j += 1;
    }
    if j >= toks.len() || is_punct(&toks[j], ';') {
        return Some((decl, None, j + 1));
    }
    let after = skip_balanced(toks, j, '{', '}');
    Some((decl, Some((j + 1, after.saturating_sub(1))), after))
}

/// Full-stream scan for `const NAME: TYPE = value;` definitions at any
/// depth (module level, impl blocks, function bodies). Const generic
/// parameters (`<const N: usize>`) have no `=` value and are skipped.
fn scan_consts(toks: &[Token], pf: &mut ParsedFile) {
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => depth -= 1,
            TokKind::Ident(s) if s == "const" => {
                if let Some((cd, next)) = parse_const(toks, i, depth == 0) {
                    pf.consts.push(cd);
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Parses `const NAME: TYPE = value;` starting at the `const` keyword.
fn parse_const(toks: &[Token], i: usize, top_level: bool) -> Option<(ConstDef, usize)> {
    let name = ident_at(toks, i + 1)?.to_string();
    if !punct_at(toks, i + 2, ':') {
        return None;
    }
    let mut j = i + 3;
    let mut ty = String::new();
    let mut depth = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('=') if depth == 0 => break,
            // `;`, `,`, `>` or `)` before `=`: a const without a value
            // (trait decl or const-generic parameter) — not a definition.
            TokKind::Punct(';' | ',' | '>' | ')') if depth == 0 => return None,
            TokKind::Punct('<' | '[' | '(') => depth += 1,
            TokKind::Punct(']' | ')') => depth -= 1,
            TokKind::Punct('>') if !punct_at(toks, j - 1, '-') => depth -= 1,
            TokKind::Ident(s) => ty = s.clone(),
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let val_start = j + 1;
    let mut k = val_start;
    let mut vdepth = 0i32;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct('(' | '[' | '{') => vdepth += 1,
            TokKind::Punct(')' | ']' | '}') => vdepth -= 1,
            TokKind::Punct(';') if vdepth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    Some((
        ConstDef {
            name,
            line: toks[i + 1].line,
            tok: i + 1,
            is_pub: pub_before(toks, i),
            top_level,
            ty,
            val: (val_start, k),
        },
        k + 1,
    ))
}

/// Full-stream scan for `#[cfg(test)]` line ranges and obs-gated token
/// spans. Runs over every token (not just top level) because `obs!`
/// invocations live inside method bodies. Inner attributes
/// (`#![cfg(feature = "obs")]`, `#![cfg(test)]`) gate every following
/// token.
fn scan_gating(toks: &[Token], pf: &mut ParsedFile) {
    let mut i = 0usize;
    while i < toks.len() {
        if is_ident(&toks[i], "obs") && punct_at(toks, i + 1, '!') {
            let after = match toks.get(i + 2).map(|t| &t.kind) {
                Some(TokKind::Punct('{')) => skip_balanced(toks, i + 2, '{', '}'),
                Some(TokKind::Punct('(')) => skip_balanced(toks, i + 2, '(', ')'),
                Some(TokKind::Punct('[')) => skip_balanced(toks, i + 2, '[', ']'),
                _ => {
                    i += 1;
                    continue;
                }
            };
            pf.obs_tokens.push((i, after.saturating_sub(1)));
            i = after;
            continue;
        }
        if is_punct(&toks[i], '#') && (punct_at(toks, i + 1, '[') || punct_at(toks, i + 1, '!')) {
            let inner = punct_at(toks, i + 1, '!');
            let open = if inner { i + 2 } else { i + 1 };
            if !punct_at(toks, open, '[') {
                i += 1;
                continue;
            }
            let after_attr = skip_balanced(toks, open, '[', ']');
            let attr = &toks[open + 1..after_attr.saturating_sub(1).max(open + 1)];
            let has = |s: &str| attr.iter().any(|t| is_ident(t, s));
            let has_obs_str = attr.iter().any(|t| matches!(&t.kind, TokKind::Str(v) if v == "obs"));
            let is_cfg = has("cfg");
            let gates_test = is_cfg && has("test") && !has("not");
            let gates_obs = is_cfg && has("feature") && has_obs_str && !has("not");
            if (gates_test || gates_obs) && after_attr < toks.len() {
                // An inner attribute gates the rest of the file; an outer
                // one gates the next item.
                let end = if inner { toks.len() - 1 } else { item_end(toks, after_attr) };
                if gates_test {
                    pf.test_lines.push((toks[i].line, toks[end].line));
                }
                if gates_obs {
                    pf.obs_tokens.push((i, end));
                }
            }
            i = after_attr;
            continue;
        }
        i += 1;
    }
}

/// Index (inclusive) of the last token of the item starting at `k`: the
/// matching `}` of its first top-level block, or the `;`/`,` that terminates
/// it, or the token before an enclosing closer. Leading attributes are
/// skipped into the item.
fn item_end(toks: &[Token], mut k: usize) -> usize {
    while punct_at(toks, k, '#') && punct_at(toks, k + 1, '[') {
        k = skip_balanced(toks, k + 1, '[', ']');
    }
    let (mut paren, mut brack, mut brace, mut angle) = (0i32, 0i32, 0i32, 0i32);
    while k < toks.len() {
        if let TokKind::Punct(c) = toks[k].kind {
            match c {
                '(' => paren += 1,
                ')' => {
                    if paren == 0 {
                        return k.saturating_sub(1);
                    }
                    paren -= 1;
                }
                '[' => brack += 1,
                ']' => {
                    if brack == 0 {
                        return k.saturating_sub(1);
                    }
                    brack -= 1;
                }
                '{' => {
                    if paren == 0 && brack == 0 && brace == 0 {
                        return skip_balanced(toks, k, '{', '}').saturating_sub(1);
                    }
                    brace += 1;
                }
                '}' => {
                    if brace == 0 {
                        return k.saturating_sub(1);
                    }
                    brace -= 1;
                }
                '<' => angle += 1,
                '>' if !punct_at(toks, k.wrapping_sub(1), '-') && angle > 0 => angle -= 1,
                ';' | ',' if paren == 0 && brack == 0 && brace == 0 && angle <= 0 => return k,
                _ => {}
            }
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// Parses `struct Name ... { fields }` starting at the `struct` keyword.
fn parse_struct(toks: &[Token], i: usize) -> Option<(StructDef, usize)> {
    let name = ident_at(toks, i + 1)?.to_string();
    let line = toks[i + 1].line;
    let tok = i + 1;
    let is_pub = pub_before(toks, i);
    let mut j = i + 2;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    // Scan over a possible `where` clause to the body/terminator.
    while j < toks.len()
        && !is_punct(&toks[j], '{')
        && !is_punct(&toks[j], '(')
        && !is_punct(&toks[j], ';')
    {
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    if is_punct(&toks[j], ';') {
        return Some((StructDef { name, line, tok, is_pub, fields: Vec::new() }, j + 1));
    }
    if is_punct(&toks[j], '(') {
        let mut k = skip_balanced(toks, j, '(', ')');
        while k < toks.len() && !is_punct(&toks[k], ';') {
            k += 1;
        }
        return Some((StructDef { name, line, tok, is_pub, fields: Vec::new() }, k + 1));
    }
    let after = skip_balanced(toks, j, '{', '}');
    let body_end = after.saturating_sub(1); // index of the matching `}`
    let mut fields = Vec::new();
    let mut k = j + 1;
    while k < body_end {
        while punct_at(toks, k, '#') && punct_at(toks, k + 1, '[') {
            k = skip_balanced(toks, k + 1, '[', ']');
        }
        if k >= body_end {
            break;
        }
        if is_ident(&toks[k], "pub") {
            k += 1;
            if punct_at(toks, k, '(') {
                k = skip_balanced(toks, k, '(', ')');
            }
        }
        let Some(fname) = ident_at(toks, k) else { break };
        fields.push(Field { name: fname.to_string(), line: toks[k].line });
        k += 1;
        if !punct_at(toks, k, ':') {
            break;
        }
        k += 1;
        // Skip the type up to the `,` separating fields.
        let (mut paren, mut brack, mut brace, mut angle) = (0i32, 0i32, 0i32, 0i32);
        while k < body_end {
            if let TokKind::Punct(c) = toks[k].kind {
                match c {
                    '(' => paren += 1,
                    ')' => paren -= 1,
                    '[' => brack += 1,
                    ']' => brack -= 1,
                    '{' => brace += 1,
                    '}' => brace -= 1,
                    '<' => angle += 1,
                    '>' if !punct_at(toks, k - 1, '-') => angle -= 1,
                    ',' if paren == 0 && brack == 0 && brace == 0 && angle == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
    }
    Some((StructDef { name, line, tok, is_pub, fields }, after))
}

/// Parses the parameter list tokens (between the signature parens) into
/// [`Param`]s plus a "has `self` receiver" flag. `self` receivers are not
/// recorded as parameters.
fn parse_params(toks: &[Token]) -> (Vec<Param>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut slices = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') if k > 0 && !is_punct(&toks[k - 1], '-') => depth -= 1,
            TokKind::Punct(',') if depth == 0 => {
                slices.push(&toks[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        slices.push(&toks[start..]);
    }
    for slice in slices {
        let mut k = 0usize;
        while k < slice.len()
            && (is_punct(&slice[k], '&')
                || is_ident(&slice[k], "mut")
                || matches!(slice[k].kind, TokKind::Lifetime))
        {
            k += 1;
        }
        let Some(name) = slice.get(k).and_then(as_ident) else { continue };
        if name == "self" {
            has_self = true;
            continue;
        }
        let name = name.to_string();
        if !punct_at(slice, k + 1, ':') {
            continue;
        }
        let ty_toks = &slice[k + 2..];
        let ty = ty_toks.iter().rev().find_map(|t| as_ident(t)).unwrap_or("").to_string();
        let simple_ty = ty_toks.len() == 1 && matches!(ty_toks[0].kind, TokKind::Ident(_));
        if !ty.is_empty() {
            params.push(Param { name, ty, simple_ty });
        }
    }
    (params, has_self)
}

/// Parses `fn name(...) ... { body }` (or `...;`) starting at `fn`.
fn parse_fn(toks: &[Token], i: usize) -> Option<(FnDef, usize)> {
    let name = ident_at(toks, i + 1)?.to_string();
    let line = toks[i + 1].line;
    let tok = i + 1;
    let is_pub = pub_before(toks, i);
    let mut j = i + 2;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    if !punct_at(toks, j, '(') {
        return None;
    }
    let params_start = j + 1;
    j = skip_balanced(toks, j, '(', ')');
    let (params, has_self) = parse_params(&toks[params_start..j.saturating_sub(1)]);
    // Return type and `where` clause up to the body or `;`.
    let ret_start = j;
    let mut ret_end = j;
    let (mut paren, mut brack, mut angle) = (0i32, 0i32, 0i32);
    while j < toks.len() {
        if paren == 0
            && brack == 0
            && angle == 0
            && is_ident(&toks[j], "where")
            && ret_end == ret_start
        {
            ret_end = j;
        }
        if let TokKind::Punct(c) = toks[j].kind {
            match c {
                '(' => paren += 1,
                ')' => paren -= 1,
                '[' => brack += 1,
                ']' => brack -= 1,
                '<' => angle += 1,
                '>' if !punct_at(toks, j - 1, '-') && angle > 0 => angle -= 1,
                '{' if paren == 0 && brack == 0 && angle == 0 => break,
                ';' if paren == 0 && brack == 0 && angle == 0 => {
                    let end = if ret_end == ret_start { j } else { ret_end };
                    let ret = simple_ret(toks, ret_start, end);
                    let f = FnDef { name, line, tok, is_pub, params, has_self, ret, body: None };
                    return Some((f, j + 1));
                }
                _ => {}
            }
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let end = if ret_end == ret_start { j } else { ret_end };
    let ret = simple_ret(toks, ret_start, end);
    let after = skip_balanced(toks, j, '{', '}');
    let body = Some((j + 1, after.saturating_sub(1)));
    Some((FnDef { name, line, tok, is_pub, params, has_self, ret, body }, after))
}

/// `Some(T)` when the tokens in `start..end` are exactly `-> T` with `T` a
/// bare identifier — the only return form the `packed-layout` pass trusts.
fn simple_ret(toks: &[Token], start: usize, end: usize) -> Option<String> {
    if end != start + 3 || !punct_at(toks, start, '-') || !punct_at(toks, start + 1, '>') {
        return None;
    }
    ident_at(toks, start + 2).map(str::to_string)
}

/// Parses `impl [<..>] [Trait for] Type [where ..] { fns }` starting at
/// `impl`.
fn parse_impl(toks: &[Token], i: usize) -> Option<(ImplDef, usize)> {
    let mut j = i + 1;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    let mut path_a: Vec<String> = Vec::new();
    let mut path_b: Vec<String> = Vec::new();
    let mut after_for = false;
    let mut angle = 0i32;
    while j < toks.len() {
        if angle == 0 && is_punct(&toks[j], '{') {
            break;
        }
        if angle == 0 && is_ident(&toks[j], "where") {
            while j < toks.len() && !is_punct(&toks[j], '{') {
                j += 1;
            }
            break;
        }
        if angle == 0 && is_ident(&toks[j], "for") {
            after_for = true;
            j += 1;
            continue;
        }
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if !punct_at(toks, j - 1, '-') && angle > 0 => angle -= 1,
            TokKind::Ident(s) if angle == 0 => {
                if after_for {
                    path_b.push(s.clone());
                } else {
                    path_a.push(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let (trait_name, type_name) = if after_for {
        (path_a.last().cloned(), path_b.last().cloned()?)
    } else {
        (None, path_a.last().cloned()?)
    };
    let after = skip_balanced(toks, j, '{', '}');
    let body_end = after.saturating_sub(1);
    let mut fns = Vec::new();
    let mut k = j + 1;
    while k < body_end {
        if is_ident(&toks[k], "fn") {
            if let Some((f, next)) = parse_fn(toks, k) {
                fns.push(f);
                k = next;
                continue;
            }
        }
        k += 1;
    }
    Some((ImplDef { trait_name, type_name, fns }, after))
}

//! Item-level parse over the token stream.
//!
//! Extracts what the lints need and nothing more: structs with named
//! fields, `impl` blocks with their methods, free functions, `#[cfg(test)]`
//! line ranges (excluded from every lint), and the obs-gated token spans
//! (`obs! { ... }` invocations and items under `#[cfg(feature = "obs")]`).
//! `macro_rules!` bodies are skipped entirely — macro fragments are not
//! real items.

use crate::lexer::{TokKind, Token};

/// A named struct field.
#[derive(Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name token.
    pub line: usize,
}

/// A struct definition. Tuple and unit structs parse with empty `fields`.
#[derive(Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Named fields in declaration order.
    pub fields: Vec<Field>,
}

/// A function with an optional body given as a `start..end` token index
/// range (exclusive of the closing brace).
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Body token range, `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
}

/// An `impl` block: `impl Trait for Type { ... }` or `impl Type { ... }`.
#[derive(Debug)]
pub struct ImplDef {
    /// Last path segment of the trait, when this is a trait impl.
    pub trait_name: Option<String>,
    /// Last path segment of the implementing type.
    pub type_name: String,
    /// Functions defined directly in the block.
    pub fns: Vec<FnDef>,
}

/// Everything the lints need from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// `impl` blocks, in source order.
    pub impls: Vec<ImplDef>,
    /// Free (non-impl) functions, including trait-declaration methods.
    pub free_fns: Vec<FnDef>,
    /// Inclusive line ranges under `#[cfg(test)]`.
    pub test_lines: Vec<(usize, usize)>,
    /// Inclusive token index ranges gated by `obs!` or
    /// `#[cfg(feature = "obs")]`.
    pub obs_tokens: Vec<(usize, usize)>,
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

fn as_ident(t: &Token) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

fn is_ident(t: &Token, s: &str) -> bool {
    as_ident(t) == Some(s)
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| is_punct(t, c))
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).and_then(as_ident)
}

/// Index just after the delimiter matching `toks[i]` (which must be `open`).
fn skip_balanced(toks: &[Token], i: usize, open: char, close: char) -> usize {
    let mut depth = 1usize;
    let mut j = i + 1;
    while j < toks.len() && depth > 0 {
        if is_punct(&toks[j], open) {
            depth += 1;
        } else if is_punct(&toks[j], close) {
            depth -= 1;
        }
        j += 1;
    }
    j
}

/// Index just after the `>` matching `toks[i]` (which must be `<`). The `>`
/// of a `->` arrow is not treated as a closer.
fn skip_generics(toks: &[Token], i: usize) -> usize {
    let mut depth = 1i32;
    let mut j = i + 1;
    while j < toks.len() && depth > 0 {
        if is_punct(&toks[j], '<') {
            depth += 1;
        } else if is_punct(&toks[j], '>') && !is_punct(&toks[j - 1], '-') {
            depth -= 1;
        }
        j += 1;
    }
    j
}

/// Parses a whole token stream into items and gated spans.
pub fn parse_file(toks: &[Token]) -> ParsedFile {
    let mut pf = ParsedFile::default();
    scan_gating(toks, &mut pf);
    let mut i = 0usize;
    while i < toks.len() {
        if is_ident(&toks[i], "macro_rules") && punct_at(toks, i + 1, '!') {
            let mut j = i + 2;
            if ident_at(toks, j).is_some() {
                j += 1;
            }
            i = match toks.get(j).map(|t| &t.kind) {
                Some(TokKind::Punct('{')) => skip_balanced(toks, j, '{', '}'),
                Some(TokKind::Punct('(')) => skip_balanced(toks, j, '(', ')'),
                Some(TokKind::Punct('[')) => skip_balanced(toks, j, '[', ']'),
                _ => j,
            };
            continue;
        }
        if is_ident(&toks[i], "struct") {
            if let Some((sd, next)) = parse_struct(toks, i) {
                pf.structs.push(sd);
                i = next;
                continue;
            }
        }
        if is_ident(&toks[i], "impl") {
            if let Some((im, next)) = parse_impl(toks, i) {
                pf.impls.push(im);
                i = next;
                continue;
            }
        }
        if is_ident(&toks[i], "fn") {
            if let Some((f, next)) = parse_fn(toks, i) {
                pf.free_fns.push(f);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    pf
}

/// Full-stream scan for `#[cfg(test)]` line ranges and obs-gated token
/// spans. Runs over every token (not just top level) because `obs!`
/// invocations live inside method bodies.
fn scan_gating(toks: &[Token], pf: &mut ParsedFile) {
    let mut i = 0usize;
    while i < toks.len() {
        if is_ident(&toks[i], "obs") && punct_at(toks, i + 1, '!') {
            let after = match toks.get(i + 2).map(|t| &t.kind) {
                Some(TokKind::Punct('{')) => skip_balanced(toks, i + 2, '{', '}'),
                Some(TokKind::Punct('(')) => skip_balanced(toks, i + 2, '(', ')'),
                Some(TokKind::Punct('[')) => skip_balanced(toks, i + 2, '[', ']'),
                _ => {
                    i += 1;
                    continue;
                }
            };
            pf.obs_tokens.push((i, after.saturating_sub(1)));
            i = after;
            continue;
        }
        if is_punct(&toks[i], '#') && punct_at(toks, i + 1, '[') {
            let after_attr = skip_balanced(toks, i + 1, '[', ']');
            let attr = &toks[i + 2..after_attr.saturating_sub(1).max(i + 2)];
            let has = |s: &str| attr.iter().any(|t| is_ident(t, s));
            let has_obs_str = attr.iter().any(|t| matches!(&t.kind, TokKind::Str(v) if v == "obs"));
            let is_cfg = has("cfg");
            let gates_test = is_cfg && has("test") && !has("not");
            let gates_obs = is_cfg && has("feature") && has_obs_str && !has("not");
            if (gates_test || gates_obs) && after_attr < toks.len() {
                let end = item_end(toks, after_attr);
                if gates_test {
                    pf.test_lines.push((toks[i].line, toks[end].line));
                }
                if gates_obs {
                    pf.obs_tokens.push((i, end));
                }
            }
            i = after_attr;
            continue;
        }
        i += 1;
    }
}

/// Index (inclusive) of the last token of the item starting at `k`: the
/// matching `}` of its first top-level block, or the `;`/`,` that terminates
/// it, or the token before an enclosing closer. Leading attributes are
/// skipped into the item.
fn item_end(toks: &[Token], mut k: usize) -> usize {
    while punct_at(toks, k, '#') && punct_at(toks, k + 1, '[') {
        k = skip_balanced(toks, k + 1, '[', ']');
    }
    let (mut paren, mut brack, mut brace, mut angle) = (0i32, 0i32, 0i32, 0i32);
    while k < toks.len() {
        if let TokKind::Punct(c) = toks[k].kind {
            match c {
                '(' => paren += 1,
                ')' => {
                    if paren == 0 {
                        return k.saturating_sub(1);
                    }
                    paren -= 1;
                }
                '[' => brack += 1,
                ']' => {
                    if brack == 0 {
                        return k.saturating_sub(1);
                    }
                    brack -= 1;
                }
                '{' => {
                    if paren == 0 && brack == 0 && brace == 0 {
                        return skip_balanced(toks, k, '{', '}').saturating_sub(1);
                    }
                    brace += 1;
                }
                '}' => {
                    if brace == 0 {
                        return k.saturating_sub(1);
                    }
                    brace -= 1;
                }
                '<' => angle += 1,
                '>' if !punct_at(toks, k.wrapping_sub(1), '-') && angle > 0 => angle -= 1,
                ';' | ',' if paren == 0 && brack == 0 && brace == 0 && angle <= 0 => return k,
                _ => {}
            }
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// Parses `struct Name ... { fields }` starting at the `struct` keyword.
fn parse_struct(toks: &[Token], i: usize) -> Option<(StructDef, usize)> {
    let name = ident_at(toks, i + 1)?.to_string();
    let line = toks[i + 1].line;
    let mut j = i + 2;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    // Scan over a possible `where` clause to the body/terminator.
    while j < toks.len()
        && !is_punct(&toks[j], '{')
        && !is_punct(&toks[j], '(')
        && !is_punct(&toks[j], ';')
    {
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    if is_punct(&toks[j], ';') {
        return Some((StructDef { name, line, fields: Vec::new() }, j + 1));
    }
    if is_punct(&toks[j], '(') {
        let mut k = skip_balanced(toks, j, '(', ')');
        while k < toks.len() && !is_punct(&toks[k], ';') {
            k += 1;
        }
        return Some((StructDef { name, line, fields: Vec::new() }, k + 1));
    }
    let after = skip_balanced(toks, j, '{', '}');
    let body_end = after.saturating_sub(1); // index of the matching `}`
    let mut fields = Vec::new();
    let mut k = j + 1;
    while k < body_end {
        while punct_at(toks, k, '#') && punct_at(toks, k + 1, '[') {
            k = skip_balanced(toks, k + 1, '[', ']');
        }
        if k >= body_end {
            break;
        }
        if is_ident(&toks[k], "pub") {
            k += 1;
            if punct_at(toks, k, '(') {
                k = skip_balanced(toks, k, '(', ')');
            }
        }
        let Some(fname) = ident_at(toks, k) else { break };
        fields.push(Field { name: fname.to_string(), line: toks[k].line });
        k += 1;
        if !punct_at(toks, k, ':') {
            break;
        }
        k += 1;
        // Skip the type up to the `,` separating fields.
        let (mut paren, mut brack, mut brace, mut angle) = (0i32, 0i32, 0i32, 0i32);
        while k < body_end {
            if let TokKind::Punct(c) = toks[k].kind {
                match c {
                    '(' => paren += 1,
                    ')' => paren -= 1,
                    '[' => brack += 1,
                    ']' => brack -= 1,
                    '{' => brace += 1,
                    '}' => brace -= 1,
                    '<' => angle += 1,
                    '>' if !punct_at(toks, k - 1, '-') => angle -= 1,
                    ',' if paren == 0 && brack == 0 && brace == 0 && angle == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
    }
    Some((StructDef { name, line, fields }, after))
}

/// Parses `fn name(...) ... { body }` (or `...;`) starting at `fn`.
fn parse_fn(toks: &[Token], i: usize) -> Option<(FnDef, usize)> {
    let name = ident_at(toks, i + 1)?.to_string();
    let line = toks[i + 1].line;
    let mut j = i + 2;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    if !punct_at(toks, j, '(') {
        return None;
    }
    j = skip_balanced(toks, j, '(', ')');
    // Return type and `where` clause up to the body or `;`.
    let (mut paren, mut brack, mut angle) = (0i32, 0i32, 0i32);
    while j < toks.len() {
        if let TokKind::Punct(c) = toks[j].kind {
            match c {
                '(' => paren += 1,
                ')' => paren -= 1,
                '[' => brack += 1,
                ']' => brack -= 1,
                '<' => angle += 1,
                '>' if !punct_at(toks, j - 1, '-') && angle > 0 => angle -= 1,
                '{' if paren == 0 && brack == 0 && angle == 0 => break,
                ';' if paren == 0 && brack == 0 && angle == 0 => {
                    return Some((FnDef { name, line, body: None }, j + 1));
                }
                _ => {}
            }
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let after = skip_balanced(toks, j, '{', '}');
    Some((FnDef { name, line, body: Some((j + 1, after.saturating_sub(1))) }, after))
}

/// Parses `impl [<..>] [Trait for] Type [where ..] { fns }` starting at
/// `impl`.
fn parse_impl(toks: &[Token], i: usize) -> Option<(ImplDef, usize)> {
    let mut j = i + 1;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    let mut path_a: Vec<String> = Vec::new();
    let mut path_b: Vec<String> = Vec::new();
    let mut after_for = false;
    let mut angle = 0i32;
    while j < toks.len() {
        if angle == 0 && is_punct(&toks[j], '{') {
            break;
        }
        if angle == 0 && is_ident(&toks[j], "where") {
            while j < toks.len() && !is_punct(&toks[j], '{') {
                j += 1;
            }
            break;
        }
        if angle == 0 && is_ident(&toks[j], "for") {
            after_for = true;
            j += 1;
            continue;
        }
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if !punct_at(toks, j - 1, '-') && angle > 0 => angle -= 1,
            TokKind::Ident(s) if angle == 0 => {
                if after_for {
                    path_b.push(s.clone());
                } else {
                    path_a.push(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let (trait_name, type_name) = if after_for {
        (path_a.last().cloned(), path_b.last().cloned()?)
    } else {
        (None, path_a.last().cloned()?)
    };
    let after = skip_balanced(toks, j, '{', '}');
    let body_end = after.saturating_sub(1);
    let mut fns = Vec::new();
    let mut k = j + 1;
    while k < body_end {
        if is_ident(&toks[k], "fn") {
            if let Some((f, next)) = parse_fn(toks, k) {
                fns.push(f);
                k = next;
                continue;
            }
        }
        k += 1;
    }
    Some((ImplDef { trait_name, type_name, fns }, after))
}

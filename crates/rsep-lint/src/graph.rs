//! Pass 1: the workspace symbol graph.
//!
//! Collects every struct, enum, trait, type alias, free function, method
//! and `const` across all scanned files into one table, records which
//! compilation unit and `#[cfg]`/`obs!` gate each lives under, and indexes
//! every identifier reference by qualified-name matching. Pass-2 lints
//! (`cfg-gate-consistency`, `dead-pub-api`, the cross-crate half of
//! `json-roundtrip`) are plain queries over this graph, so "does anything
//! outside this crate use that symbol" no longer stops at file boundaries.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::Unit;

/// Compile-time gate a symbol or reference site lives under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Compiled in every configuration.
    Unconditional,
    /// Behind `obs!` / `#[cfg(feature = "obs")]`.
    Obs,
    /// Behind `#[cfg(test)]`.
    Test,
}

/// One defined symbol.
#[derive(Debug)]
pub struct Symbol {
    /// Symbol name (last path segment).
    pub name: String,
    /// Index into the unit slice the graph was built from.
    pub unit: usize,
    /// 1-based line of the definition's name token.
    pub line: usize,
    /// `"struct"`, `"enum"`, `"trait"`, `"type"`, `"fn"`, `"method"` or
    /// `"const"`.
    pub kind: &'static str,
    /// Unrestricted `pub`.
    pub is_pub: bool,
    /// Defined at module top level (meaningful for `fn`/`const`).
    pub top_level: bool,
    /// Gate of the definition site.
    pub gate: Gate,
}

/// One identifier reference resolved by name.
#[derive(Debug, Clone, Copy)]
pub struct RefSite {
    /// Index into the unit slice.
    pub unit: usize,
    /// 1-based line of the reference.
    pub line: usize,
    /// Gate of the reference site.
    pub gate: Gate,
}

/// The workspace symbol graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All symbol definitions, in unit order.
    pub symbols: Vec<Symbol>,
    /// Name → indices into [`Graph::symbols`].
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Name → reference sites (definition sites, field accesses and
    /// struct-literal field names excluded). Only names that resolve to at
    /// least one symbol are indexed.
    pub refs: BTreeMap<String, Vec<RefSite>>,
}

/// Gate of token index `ti` in `u`: obs spans win over `#[cfg(test)]`
/// ranges (an obs-gated test file compiles only with the feature on).
pub fn gate_at(u: &Unit, ti: usize, line: usize) -> Gate {
    if u.parsed.obs_tokens.iter().any(|&(a, b)| a <= ti && ti <= b) {
        Gate::Obs
    } else if u.parsed.test_lines.iter().any(|&(a, b)| a <= line && line <= b) {
        Gate::Test
    } else {
        Gate::Unconditional
    }
}

impl Graph {
    /// Builds the graph over all scanned units.
    pub fn build(units: &[Unit]) -> Graph {
        let mut g = Graph::default();
        // Definition-site token indices, per unit, so the reference scan
        // can skip them.
        let mut def_toks: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); units.len()];

        for (ui, u) in units.iter().enumerate() {
            let mut add = |name: &str, tok: usize, kind: &'static str, is_pub: bool, top: bool| {
                def_toks[ui].insert(tok);
                let line = u.tokens[tok].line;
                g.symbols.push(Symbol {
                    name: name.to_string(),
                    unit: ui,
                    line,
                    kind,
                    is_pub,
                    top_level: top,
                    gate: gate_at(u, tok, line),
                });
            };
            for s in &u.parsed.structs {
                add(&s.name, s.tok, "struct", s.is_pub, true);
            }
            for d in &u.parsed.others {
                add(&d.name, d.tok, d.kind, d.is_pub, true);
            }
            for f in &u.parsed.free_fns {
                add(&f.name, f.tok, "fn", f.is_pub, true);
            }
            for im in &u.parsed.impls {
                for f in &im.fns {
                    add(&f.name, f.tok, "method", f.is_pub, false);
                }
            }
            for c in &u.parsed.consts {
                add(&c.name, c.tok, "const", c.is_pub, c.top_level);
            }
        }
        for (si, s) in g.symbols.iter().enumerate() {
            g.by_name.entry(s.name.clone()).or_default().push(si);
        }

        for (ui, u) in units.iter().enumerate() {
            for (ti, t) in u.tokens.iter().enumerate() {
                let TokKind::Ident(name) = &t.kind else { continue };
                if !g.by_name.contains_key(name) || def_toks[ui].contains(&ti) {
                    continue;
                }
                let prev = ti.checked_sub(1).map(|p| &u.tokens[p].kind);
                let next = u.tokens.get(ti + 1).map(|t| &t.kind);
                let next2 = u.tokens.get(ti + 2).map(|t| &t.kind);
                // Bindings and macro fragments are not references.
                if let Some(TokKind::Ident(p)) = prev {
                    if matches!(
                        p.as_str(),
                        "fn" | "struct" | "enum" | "trait" | "const" | "mod" | "let"
                    ) {
                        continue;
                    }
                }
                if matches!(prev, Some(TokKind::Punct('$'))) {
                    continue;
                }
                // `x.field` is a field access, not a symbol reference —
                // unless a `(` follows (method call).
                if matches!(prev, Some(TokKind::Punct('.')))
                    && !matches!(next, Some(TokKind::Punct('(')))
                {
                    continue;
                }
                // `name:` (not `name::`) is a struct-literal field or a
                // binding's type annotation.
                if matches!(next, Some(TokKind::Punct(':')))
                    && !matches!(next2, Some(TokKind::Punct(':')))
                {
                    continue;
                }
                g.refs.entry(name.clone()).or_default().push(RefSite {
                    unit: ui,
                    line: t.line,
                    gate: gate_at(u, ti, t.line),
                });
            }
        }
        g
    }
}

//! CLI for the workspace invariant linter.
//!
//! ```text
//! rsep-lint [--json] [ROOT]     # default ROOT: current directory
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/IO error. Diagnostics go
//! to stdout in `file:line: lint-name: message` form (or as a JSON array
//! with `--json`); the summary goes to stderr.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
usage: rsep-lint [--json] [ROOT]

Walks ROOT/crates/*/{src,tests,benches,examples} plus the root src/, tests/
and examples/ trees, builds a workspace symbol graph, and enforces the
invariants:
  fingerprint-coverage  every field of a struct with a manual `impl
                        Fingerprint` is referenced in its fingerprint() body
  fingerprint-exclusion-audit
                        every fingerprint-coverage exemption cites its
                        equivalence test (`; proven-by <file>` in the
                        reason); the file must exist and reference the
                        excluded field
  merge-coverage        every stats-family field appears in its merge()
  json-roundtrip        to_json keys are read by the paired from_json (and
                        vice versa), pairing across crates; `// lint:
                        json-reader(<Type>)` binds a one-directional reader
                        to <Type>'s to_json keys
  obs-gate              attribution types in rsep-uarch stay behind obs! /
                        #[cfg(feature = \"obs\")]
  cfg-gate-consistency  symbols defined only behind the obs feature are not
                        referenced from unconditionally-compiled code
  dead-pub-api          pub items in library trees have at least one inbound
                        reference from another workspace compilation unit
  packed-layout         pack/unpack bitfield clusters: field spans are
                        pairwise disjoint, fit the packed word, and pack and
                        unpack agree on each field's width
  determinism           SystemTime::now / Instant::now / HashMap / HashSet
                        (bare, fully-qualified or `use ... as` aliased)
                        need an explicit justification

Options:
  --json                emit findings as a JSON array of
                        {file, line, lint, message, exempted} objects
                        (exempted findings included)

Deliberate exclusions: `// lint: exempt(<lint>, <reason>)` on or above the
line, or `// lint: exempt-file(<lint>, <reason>)` for a whole file.

Exit codes: 0 clean, 1 findings, 2 usage/IO error.";

/// Escapes `s` as the body of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut root: Option<String> = None;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            s if s.starts_with('-') => {
                eprintln!("rsep-lint: unknown option `{s}`\n{USAGE}");
                return ExitCode::from(2);
            }
            s => {
                if root.is_some() {
                    eprintln!("rsep-lint: at most one ROOT argument\n{USAGE}");
                    return ExitCode::from(2);
                }
                root = Some(s.to_string());
            }
        }
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    match rsep_lint::lint_workspace_full(Path::new(&root)) {
        Err(e) => {
            eprintln!("rsep-lint: {e}");
            ExitCode::from(2)
        }
        Ok((findings, scanned)) => {
            let failing = findings.iter().filter(|f| !f.exempted).count();
            if json {
                let mut out = String::from("[");
                for (i, f) in findings.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n  {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \
                         \"message\": \"{}\", \"exempted\": {}}}",
                        json_escape(&f.diag.file),
                        f.diag.line,
                        json_escape(&f.diag.lint),
                        json_escape(&f.diag.message),
                        f.exempted
                    ));
                }
                out.push_str(if findings.is_empty() { "]" } else { "\n]" });
                println!("{out}");
            } else {
                for f in findings.iter().filter(|f| !f.exempted) {
                    println!("{}", f.diag);
                }
            }
            if failing == 0 {
                eprintln!("rsep-lint: clean ({scanned} files)");
                ExitCode::SUCCESS
            } else {
                eprintln!("rsep-lint: {failing} finding(s) in {scanned} files");
                ExitCode::from(1)
            }
        }
    }
}

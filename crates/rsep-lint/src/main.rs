//! CLI for the workspace invariant linter.
//!
//! ```text
//! rsep-lint [ROOT]     # default ROOT: current directory
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/IO error. Diagnostics go
//! to stdout in `file:line: lint-name: message` form; the summary goes to
//! stderr.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
usage: rsep-lint [ROOT]

Walks ROOT/crates/*/src and enforces the workspace invariants:
  fingerprint-coverage  every field of a struct with a manual `impl
                        Fingerprint` is referenced in its fingerprint() body
  merge-coverage        every stats-family field appears in its merge()
  json-roundtrip        to_json keys are read by the paired from_json, and
                        vice versa
  obs-gate              attribution types in rsep-uarch stay behind obs! /
                        #[cfg(feature = \"obs\")]
  determinism           SystemTime::now / Instant::now / HashMap / HashSet
                        need an explicit justification

Deliberate exclusions: `// lint: exempt(<lint>, <reason>)` on or above the
line, or `// lint: exempt-file(<lint>, <reason>)` for a whole file.

Exit codes: 0 clean, 1 findings, 2 usage/IO error.";

fn main() -> ExitCode {
    let mut root: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            s if s.starts_with('-') => {
                eprintln!("rsep-lint: unknown option `{s}`\n{USAGE}");
                return ExitCode::from(2);
            }
            s => {
                if root.is_some() {
                    eprintln!("rsep-lint: at most one ROOT argument\n{USAGE}");
                    return ExitCode::from(2);
                }
                root = Some(s.to_string());
            }
        }
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    match rsep_lint::lint_workspace(Path::new(&root)) {
        Err(e) => {
            eprintln!("rsep-lint: {e}");
            ExitCode::from(2)
        }
        Ok((diags, scanned)) => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                eprintln!("rsep-lint: clean ({scanned} files)");
                ExitCode::SUCCESS
            } else {
                eprintln!("rsep-lint: {} finding(s) in {scanned} files", diags.len());
                ExitCode::from(1)
            }
        }
    }
}

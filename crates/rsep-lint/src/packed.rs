//! **packed-layout** — prove packed-word bitfield clusters consistent.
//!
//! The flat predictor tables pack several logical fields into one integer
//! word (`tag | ctr << CTR_SHIFT | useful << USEFUL_SHIFT`), with free
//! helper functions packing and unpacking around shared shift/mask
//! constants. Nothing ties those constants together: nudging one shift
//! makes two fields overlap and every table silently corrupts. This pass
//! evaluates the constants with a small const-expression interpreter,
//! recovers the `(bit offset, width)` of every packed field from the
//! pack/unpack function bodies, and proves per word width that the fields
//! are pairwise disjoint, fit the word, and that pack and unpack agree on
//! each field's width.
//!
//! Scope is deliberately narrow so the proof stays sound: only free
//! functions (no `self` receiver) whose parameter/return types are bare
//! `u8`/`u16`/`u32`/`u64`/`u128` join a cluster, and only terms the
//! interpreter can fully evaluate produce fields — anything else is
//! ignored, never guessed at.

use std::collections::BTreeMap;

use crate::lexer::{TokKind, Token};
use crate::parse::FnDef;
use crate::{Diagnostic, Unit};

/// Bit width of a bare integer type name.
fn int_width(name: &str) -> Option<u32> {
    match name {
        "u8" | "i8" => Some(8),
        "u16" | "i16" => Some(16),
        "u32" | "i32" => Some(32),
        "u64" | "i64" | "usize" | "isize" => Some(64),
        "u128" | "i128" => Some(128),
        _ => None,
    }
}

fn mask(bits: u32) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

fn as_ident(t: &Token) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

/// Const-expression evaluator over one file's token stream. Supports the
/// constant grammar the packed clusters actually use: integer literals,
/// named consts, `uN::MAX` / `uN::BITS`, parens, `as` casts, and the
/// binary operators `| ^ & << >> + - *`.
struct Eval<'a> {
    u: &'a Unit,
    /// Const name → value token range (first definition wins).
    consts: BTreeMap<&'a str, (usize, usize)>,
}

impl<'a> Eval<'a> {
    fn new(u: &'a Unit) -> Eval<'a> {
        let mut consts = BTreeMap::new();
        for c in &u.parsed.consts {
            consts.entry(c.name.as_str()).or_insert(c.val);
        }
        Eval { u, consts }
    }

    fn eval(&self, toks: &[Token], fuel: u32) -> Option<u128> {
        let mut pos = 0usize;
        let v = self.expr(toks, &mut pos, 0, fuel)?;
        if pos == toks.len() {
            Some(v)
        } else {
            None
        }
    }

    fn const_value(&self, name: &str, fuel: u32) -> Option<u128> {
        let &(a, b) = self.consts.get(name)?;
        self.eval(&self.u.tokens[a..b], fuel.checked_sub(1)?)
    }

    /// Precedence-climbing binary expression parse. Levels (low to high):
    /// `|`, `^`, `&`, `<< >>`, `+ -`, `*`.
    fn expr(&self, t: &[Token], pos: &mut usize, min_lvl: u8, fuel: u32) -> Option<u128> {
        let mut lhs = self.primary(t, pos, fuel)?;
        loop {
            let Some(tok) = t.get(*pos) else { return Some(lhs) };
            let (lvl, len) = match &tok.kind {
                TokKind::Punct('|') => (0u8, 1usize),
                TokKind::Punct('^') => (1, 1),
                TokKind::Punct('&') => (2, 1),
                TokKind::Punct('<') if t.get(*pos + 1).is_some_and(|n| is_punct(n, '<')) => (3, 2),
                TokKind::Punct('>') if t.get(*pos + 1).is_some_and(|n| is_punct(n, '>')) => (3, 2),
                TokKind::Punct('+' | '-') => (4, 1),
                TokKind::Punct('*') => (5, 1),
                _ => return Some(lhs),
            };
            if lvl < min_lvl {
                return Some(lhs);
            }
            let op = match &tok.kind {
                TokKind::Punct(c) => *c,
                _ => unreachable!(),
            };
            *pos += len;
            let rhs = self.expr(t, pos, lvl + 1, fuel)?;
            lhs = match (op, len) {
                ('|', _) => lhs | rhs,
                ('^', _) => lhs ^ rhs,
                ('&', _) => lhs & rhs,
                ('<', 2) => lhs.checked_shl(u32::try_from(rhs).ok()?)?,
                ('>', 2) => lhs.checked_shr(u32::try_from(rhs).ok()?)?,
                ('+', _) => lhs.checked_add(rhs)?,
                ('-', _) => lhs.checked_sub(rhs)?,
                ('*', _) => lhs.checked_mul(rhs)?,
                _ => return None,
            };
        }
    }

    fn primary(&self, t: &[Token], pos: &mut usize, fuel: u32) -> Option<u128> {
        if fuel == 0 {
            return None;
        }
        let tok = t.get(*pos)?;
        let mut v = match &tok.kind {
            TokKind::Punct('(') => {
                *pos += 1;
                let v = self.expr(t, pos, 0, fuel)?;
                if !t.get(*pos).is_some_and(|c| is_punct(c, ')')) {
                    return None;
                }
                *pos += 1;
                v
            }
            TokKind::Num(Some(v)) => {
                *pos += 1;
                *v
            }
            TokKind::Ident(s) => {
                // `uN::MAX` / `uN::BITS` path, else a named const.
                if t.get(*pos + 1).is_some_and(|c| is_punct(c, ':'))
                    && t.get(*pos + 2).is_some_and(|c| is_punct(c, ':'))
                {
                    let width = int_width(s)?;
                    let assoc = t.get(*pos + 3).and_then(as_ident)?;
                    *pos += 4;
                    match assoc {
                        "MAX" => mask(width),
                        "BITS" => u128::from(width),
                        _ => return None,
                    }
                } else {
                    *pos += 1;
                    self.const_value(s, fuel)?
                }
            }
            _ => return None,
        };
        // `as` casts bind tighter than every binary operator.
        while t.get(*pos).is_some_and(|c| as_ident(c) == Some("as")) {
            let ty = t.get(*pos + 1).and_then(as_ident)?;
            v &= mask(int_width(ty)?);
            *pos += 2;
        }
        Some(v)
    }
}

/// One recovered packed field.
#[derive(Debug, Clone)]
struct FieldSpec {
    lo: u32,
    width: u32,
    label: String,
    /// Diagnostic anchor: the shift constant's definition line when the
    /// field's position comes from a named const, else the function line.
    anchor: usize,
}

impl FieldSpec {
    fn hi(&self) -> u32 {
        self.lo + self.width
    }
    fn overlaps(&self, other: &FieldSpec) -> bool {
        self.lo < other.hi() && other.lo < self.hi()
    }
}

/// Splits `toks` at top-level occurrences of single `|` (logical `||`
/// aborts — not a pack expression).
fn split_terms(toks: &[Token]) -> Option<Vec<&[Token]>> {
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => depth -= 1,
            TokKind::Punct('|') => {
                if toks.get(k + 1).is_some_and(|n| is_punct(n, '|')) {
                    return None;
                }
                if depth == 0 {
                    out.push(&toks[start..k]);
                    start = k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    out.push(&toks[start..]);
    Some(out)
}

/// Strips parens enclosing the whole slice, repeatedly.
fn strip_parens(mut t: &[Token]) -> &[Token] {
    loop {
        if t.len() < 2 || !is_punct(&t[0], '(') || !is_punct(&t[t.len() - 1], ')') {
            return t;
        }
        // The first `(` must match the last `)`.
        let mut depth = 0i32;
        for (k, tok) in t.iter().enumerate() {
            if is_punct(tok, '(') {
                depth += 1;
            } else if is_punct(tok, ')') {
                depth -= 1;
                if depth == 0 && k != t.len() - 1 {
                    return t;
                }
            }
        }
        t = &t[1..t.len() - 1];
    }
}

/// Index of the rightmost top-level occurrence of `op` (1 or 2 chars).
fn rfind_op(toks: &[Token], op: char, two: bool) -> Option<usize> {
    let mut depth = 0i32;
    let mut found = None;
    let mut k = 0usize;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => depth -= 1,
            TokKind::Punct(c) if *c == op && depth == 0 => {
                if two {
                    if toks.get(k + 1).is_some_and(|n| is_punct(n, op)) {
                        found = Some(k);
                        k += 2;
                        continue;
                    }
                } else {
                    found = Some(k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    found
}

/// Index of the rightmost top-level `as` keyword.
fn rfind_as(toks: &[Token]) -> Option<usize> {
    let mut depth = 0i32;
    let mut found = None;
    for (k, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => depth -= 1,
            TokKind::Ident(s) if s == "as" && depth == 0 => found = Some(k),
            _ => {}
        }
    }
    found
}

/// Width of a bare parameter type (`bool` packs as one bit).
fn param_width(ty: &str) -> Option<u32> {
    if ty == "bool" {
        Some(1)
    } else {
        int_width(ty)
    }
}

/// Span of the set bits of `v`: `(trailing_zeros, width)`.
fn bit_span(v: u128) -> Option<(u32, u32)> {
    if v == 0 {
        return None;
    }
    let tz = v.trailing_zeros();
    let hi = 128 - v.leading_zeros();
    Some((tz, hi - tz))
}

/// Label/anchor for a shift or flag whose expression is a single named
/// const: the const's name and definition line.
fn const_label(u: &Unit, toks: &[Token]) -> Option<(String, usize)> {
    let t = strip_parens(toks);
    if t.len() != 1 {
        return None;
    }
    let name = as_ident(&t[0])?;
    let c = u.parsed.consts.iter().find(|c| c.name == name)?;
    Some((name.to_string(), c.line))
}

/// Recovers the field a single pack term writes, or `None` when the term
/// is not provable.
fn pack_term_field(u: &Unit, ev: &Eval<'_>, f: &FnDef, term: &[Token]) -> Option<FieldSpec> {
    let t = strip_parens(term);
    if t.is_empty() {
        return None;
    }
    // `if cond { FLAG } else { 0 }` — a boolean flag bit.
    if as_ident(&t[0]) == Some("if") {
        let open_a = t.iter().position(|tok| is_punct(tok, '{'))?;
        let mut depth = 0i32;
        let mut close_a = open_a;
        for (k, tok) in t.iter().enumerate().skip(open_a) {
            if is_punct(tok, '{') {
                depth += 1;
            } else if is_punct(tok, '}') {
                depth -= 1;
                if depth == 0 {
                    close_a = k;
                    break;
                }
            }
        }
        let block_a = &t[open_a + 1..close_a];
        if as_ident(t.get(close_a + 1)?) != Some("else") || !is_punct(t.get(close_a + 2)?, '{') {
            return None;
        }
        let block_b = &t[close_a + 3..t.len() - 1];
        let va = ev.eval(block_a, 16)?;
        let vb = ev.eval(block_b, 16)?;
        let (v, branch) = match (va, vb) {
            (v, 0) if v != 0 => (v, block_a),
            (0, v) if v != 0 => (v, block_b),
            _ => return None,
        };
        let (lo, width) = bit_span(v)?;
        let (label, anchor) = const_label(u, branch).unwrap_or_else(|| (f.name.clone(), f.line));
        return Some(FieldSpec { lo, width, label, anchor });
    }
    // `value_expr << SHIFT` (shift optional).
    let (value, shift, shift_label) = match rfind_op(t, '<', true) {
        Some(k) => {
            let shift_toks = &t[k + 2..];
            let s = u32::try_from(ev.eval(shift_toks, 16)?).ok()?;
            (strip_parens(&t[..k]), s, const_label(u, shift_toks))
        }
        None => (t, 0u32, None),
    };
    let (label, anchor) = shift_label.unwrap_or_else(|| (f.name.clone(), f.line));
    // Width of the value expression.
    if let Some(k) = rfind_op(value, '&', false) {
        let m = ev.eval(&value[k + 1..], 16).or_else(|| ev.eval(&value[..k], 16))?;
        if m == 0 || !(m + 1).is_power_of_two() {
            return None;
        }
        return Some(FieldSpec { lo: shift, width: m.count_ones(), label, anchor });
    }
    // `uK::from(x)` — width of `x`'s declared parameter type, else `K`.
    if value.len() >= 6
        && as_ident(&value[3]) == Some("from")
        && is_punct(&value[1], ':')
        && is_punct(&value[2], ':')
        && is_punct(&value[4], '(')
        && is_punct(&value[value.len() - 1], ')')
    {
        let k_width = int_width(as_ident(&value[0])?)?;
        let inner = strip_parens(&value[5..value.len() - 1]);
        let width = match inner {
            [one] => as_ident(one)
                .and_then(|n| f.params.iter().find(|p| p.name == n))
                .and_then(|p| param_width(&p.ty))
                .unwrap_or(k_width),
            _ => k_width,
        };
        let label = if label == f.name {
            inner.first().and_then(as_ident).map_or(label, str::to_string)
        } else {
            label
        };
        return Some(FieldSpec { lo: shift, width, label, anchor });
    }
    // `expr as uK` — unmasked cast, width is the full cast width.
    if let Some(k) = rfind_as(value) {
        let width = int_width(as_ident(value.get(k + 1)?)?)?;
        if k + 2 == value.len() {
            return Some(FieldSpec { lo: shift, width, label, anchor });
        }
        return None;
    }
    // Bare parameter.
    if let [one] = value {
        if let Some(p) = as_ident(one).and_then(|n| f.params.iter().find(|p| p.name == n)) {
            let width = param_width(&p.ty)?;
            return Some(FieldSpec { lo: shift, width, label: p.name.clone(), anchor });
        }
    }
    // Constant term (`| FLAG`).
    let v = ev.eval(value, 16)?;
    let (tz, width) = bit_span(v)?;
    let (label, anchor) = const_label(u, value).unwrap_or((label, anchor));
    Some(FieldSpec { lo: shift + tz, width, label, anchor })
}

/// Recovers the field an unpack accessor reads, or `None` when the body
/// does not match a known accessor shape.
fn unpack_field(u: &Unit, ev: &Eval<'_>, f: &FnDef) -> Option<FieldSpec> {
    let (b0, b1) = f.body?;
    let body = strip_parens(&u.tokens[b0..b1]);
    let p = &f.params.first()?.name;
    let mut q = 0usize;
    while q < body.len() {
        if as_ident(&body[q]) != Some(p.as_str()) {
            q += 1;
            continue;
        }
        // `param as uK` — the low K bits.
        if as_ident(body.get(q + 1)?) == Some("as") {
            let width = int_width(as_ident(body.get(q + 2)?)?)?;
            return Some(FieldSpec { lo: 0, width, label: f.name.clone(), anchor: f.line });
        }
        // `param & FLAG != 0` — a flag bit.
        if is_punct(body.get(q + 1)?, '&')
            && body.get(q + 3).is_some_and(|t| is_punct(t, '!'))
            && body.get(q + 4).is_some_and(|t| is_punct(t, '='))
        {
            let flag_toks = &body[q + 2..q + 3];
            let v = ev.eval(flag_toks, 16)?;
            let (lo, width) = bit_span(v)?;
            let (label, anchor) =
                const_label(u, flag_toks).unwrap_or_else(|| (f.name.clone(), f.line));
            return Some(FieldSpec { lo, width, label, anchor });
        }
        // `(param >> SHIFT) & MASK` or `(param >> SHIFT) as uK`.
        if body.get(q + 1).is_some_and(|t| is_punct(t, '>'))
            && body.get(q + 2).is_some_and(|t| is_punct(t, '>'))
        {
            // Shift operand: a single ident or literal.
            let shift_toks = &body[q + 3..(q + 4).min(body.len())];
            let s = u32::try_from(ev.eval(shift_toks, 16)?).ok()?;
            let (label, anchor) =
                const_label(u, shift_toks).unwrap_or_else(|| (f.name.clone(), f.line));
            let mut j = q + 4;
            while body.get(j).is_some_and(|t| is_punct(t, ')')) {
                j += 1;
            }
            if body.get(j).is_some_and(|t| is_punct(t, '&')) {
                let m = ev.eval(&body[j + 1..(j + 2).min(body.len())], 16)?;
                if m == 0 || !(m + 1).is_power_of_two() {
                    return None;
                }
                return Some(FieldSpec { lo: s, width: m.count_ones(), label, anchor });
            }
            if as_ident(body.get(j)?) == Some("as") {
                let width = int_width(as_ident(body.get(j + 1)?)?)?;
                return Some(FieldSpec { lo: s, width, label, anchor });
            }
            return None;
        }
        return None;
    }
    None
}

/// The packed-layout pass over one unit's free functions.
pub fn packed_layout_unit(u: &Unit) -> Vec<Diagnostic> {
    let ev = Eval::new(u);
    struct PackFn {
        fields: Vec<FieldSpec>,
    }
    // word width → (pack fns, unpack fields)
    let mut clusters: BTreeMap<u32, (Vec<PackFn>, Vec<FieldSpec>)> = BTreeMap::new();
    for f in &u.parsed.free_fns {
        if f.has_self {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        // Pack candidate: bare uN return, body a top-level `|` of terms.
        if let Some(w) = f.ret.as_deref().and_then(int_width) {
            let body = strip_parens(&u.tokens[b0..b1]);
            if let Some(terms) = split_terms(body) {
                if terms.len() >= 2 {
                    let fields: Vec<FieldSpec> =
                        terms.iter().filter_map(|t| pack_term_field(u, &ev, f, t)).collect();
                    if fields.iter().any(|fs| fs.lo > 0) {
                        clusters.entry(w).or_default().0.push(PackFn { fields });
                        continue;
                    }
                }
            }
        }
        // Unpack candidate: exactly one bare-uN parameter.
        if f.params.len() == 1 && f.params[0].simple_ty {
            if let Some(w) = int_width(&f.params[0].ty) {
                if let Some(fs) = unpack_field(u, &ev, f) {
                    clusters.entry(w).or_default().1.push(fs);
                }
            }
        }
    }

    let mut diags = Vec::new();
    let overlap_diag = |diags: &mut Vec<Diagnostic>, w: u32, a: &FieldSpec, b: &FieldSpec| {
        let (lo, hi) = if a.lo <= b.lo { (a, b) } else { (b, a) };
        diags.push(Diagnostic::new(
            &u.path,
            hi.anchor,
            "packed-layout",
            format!(
                "`{}` (bits {}..{}) and `{}` (bits {}..{}) of the u{w} packed word overlap",
                lo.label,
                lo.lo,
                lo.hi(),
                hi.label,
                hi.lo,
                hi.hi(),
            ),
        ));
    };
    for (&w, (packs, unpacks)) in &clusters {
        if packs.is_empty() {
            continue; // unpack shapes without a packer are not a cluster
        }
        let mut pack_widths: BTreeMap<u32, u32> = BTreeMap::new();
        for pf in packs {
            for fs in &pf.fields {
                pack_widths.entry(fs.lo).or_insert(fs.width);
                if fs.hi() > w {
                    diags.push(Diagnostic::new(
                        &u.path,
                        fs.anchor,
                        "packed-layout",
                        format!(
                            "`{}` (bits {}..{}) does not fit the u{w} packed word",
                            fs.label,
                            fs.lo,
                            fs.hi(),
                        ),
                    ));
                }
            }
            for (i, a) in pf.fields.iter().enumerate() {
                for b in &pf.fields[i + 1..] {
                    if a.overlaps(b) {
                        overlap_diag(&mut diags, w, a, b);
                    }
                }
            }
        }
        for fs in unpacks.iter() {
            if fs.hi() > w {
                diags.push(Diagnostic::new(
                    &u.path,
                    fs.anchor,
                    "packed-layout",
                    format!(
                        "`{}` (bits {}..{}) does not fit the u{w} packed word",
                        fs.label,
                        fs.lo,
                        fs.hi(),
                    ),
                ));
            }
            if let Some(&wp) = pack_widths.get(&fs.lo) {
                if wp != fs.width {
                    diags.push(Diagnostic::new(
                        &u.path,
                        fs.anchor,
                        "packed-layout",
                        format!(
                            "pack writes {wp} bits at bit {} of the u{w} word but `{}` reads {}",
                            fs.lo, fs.label, fs.width,
                        ),
                    ));
                }
            }
        }
        for (i, a) in unpacks.iter().enumerate() {
            for b in &unpacks[i + 1..] {
                if a.overlaps(b) {
                    overlap_diag(&mut diags, w, a, b);
                }
            }
        }
    }
    diags
}

//! Token-level scanner for the workspace linter.
//!
//! Hand-rolled — the workspace builds offline, so no `syn`/`proc-macro2`.
//! Produces a flat token stream with 1-based line numbers, strips comments,
//! and captures `// lint: exempt(<lint>, <reason>)` directives on the way
//! through. String literals become single tokens, so later passes can track
//! brace/paren depth without worrying about quoted delimiters.

/// What a [`Token`] is. Only the distinctions the lints need survive:
/// identifiers (field/type references), string literals (JSON keys),
/// punctuation (delimiter matching) and integer literal values (the
/// `packed-layout` const evaluator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (raw text between the quotes, escapes unresolved).
    Str(String),
    /// Single punctuation character.
    Punct(char),
    /// Numeric or char literal. Integer literals carry their value so the
    /// `packed-layout` lint can evaluate shift/mask constants; floats, char
    /// literals and out-of-range integers carry `None`.
    Num(Option<u128>),
    /// Lifetime such as `'a` (name unused by any lint).
    Lifetime,
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token payload.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

/// An in-source exemption directive:
/// `// lint: exempt(<lint>, <reason>)` or
/// `// lint: exempt-file(<lint>, <reason>)`.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive comment starts on.
    pub line: usize,
    /// `exempt-file` — the exemption covers the whole file.
    pub file_level: bool,
    /// Lint name the exemption targets.
    pub lint: String,
    /// Human justification; must be non-empty (enforced by the engine).
    pub reason: String,
    /// Set when the directive could not be parsed; the engine reports it.
    pub malformed: Option<String>,
}

impl Directive {
    fn malformed(line: usize, msg: &str) -> Directive {
        Directive {
            line,
            file_level: false,
            lint: String::new(),
            reason: String::new(),
            malformed: Some(msg.to_string()),
        }
    }
}

/// A `// lint: json-reader(<Type>)` declaration: the next function consumes
/// JSON produced by `<Type>`'s `to_json`, so every key it `get`s must be
/// emitted by that writer — even when the writer lives in another crate.
#[derive(Debug, Clone)]
pub struct ReaderDecl {
    /// 1-based line the declaration comment starts on.
    pub line: usize,
    /// Writer type whose emitted keys bound the reader.
    pub target: String,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order (lines are non-decreasing).
    pub tokens: Vec<Token>,
    /// Exemption directives found in comments, in source order.
    pub directives: Vec<Directive>,
    /// `json-reader` declarations found in comments, in source order.
    pub readers: Vec<ReaderDecl>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens plus exemption directives.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut line_of = Vec::with_capacity(n);
    let mut line = 1usize;
    for &c in &chars {
        line_of.push(line);
        if c == '\n' {
            line += 1;
        }
    }

    let mut out = Lexed::default();
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        let ln = line_of[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments; line comments may carry directives.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let body: String = chars[start..j].iter().collect();
            match parse_directive(&body, ln) {
                Some(ParsedComment::Exempt(d)) => out.directives.push(d),
                Some(ParsedComment::Reader(r)) => out.readers.push(r),
                None => {}
            }
            i = j;
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            // Block comments nest in Rust.
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Prefixed literals and raw identifiers: r"", r#""#, b"", br"", b'', r#ident.
        if c == 'r' || c == 'b' {
            if let Some((tok, next)) = lex_prefixed(&chars, i, ln) {
                out.tokens.push(tok);
                i = next;
                continue;
            }
        }
        if c == '"' {
            let (text, next) = lex_string(&chars, i + 1);
            out.tokens.push(Token { kind: TokKind::Str(text), line: ln });
            i = next;
            continue;
        }
        if c == '\'' {
            // Char literal or lifetime.
            if i + 1 < n && chars[i + 1] == '\\' {
                let mut j = i + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Token { kind: TokKind::Num(None), line: ln });
                i = j + 1;
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                out.tokens.push(Token { kind: TokKind::Num(None), line: ln });
                i += 3;
                continue;
            }
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token { kind: TokKind::Lifetime, line: ln });
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            let name: String = chars[i..j].iter().collect();
            out.tokens.push(Token { kind: TokKind::Ident(name), line: ln });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (is_ident_continue(chars[j])) {
                j += 1;
            }
            let mut float = false;
            if j + 1 < n && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
                float = true;
                j += 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
            }
            let text: String = chars[i..j].iter().collect();
            let value = if float { None } else { int_value(&text) };
            out.tokens.push(Token { kind: TokKind::Num(value), line: ln });
            i = j;
            continue;
        }
        out.tokens.push(Token { kind: TokKind::Punct(c), line: ln });
        i += 1;
    }
    out
}

/// Parses the value of an integer literal: decimal, `0x`/`0o`/`0b`
/// prefixes, `_` separators and a trailing type suffix (`u32`, `i8`,
/// `usize`, ...). Returns `None` for anything else (floats never get here).
fn int_value(text: &str) -> Option<u128> {
    let t = text.replace('_', "");
    let (radix, digits) = match t.as_bytes() {
        [b'0', b'x', ..] => (16, &t[2..]),
        [b'0', b'o', ..] => (8, &t[2..]),
        [b'0', b'b', ..] => (2, &t[2..]),
        _ => (10, t.as_str()),
    };
    // Strip a type suffix: the first char that is not a digit of `radix`
    // starts the suffix (hex digits are never suffix starts for radix 16).
    let end = digits.find(|c: char| !c.is_digit(radix)).unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

/// Lexes a normal (escaped) string body starting just after the opening
/// quote; returns the raw inner text and the index after the closing quote.
fn lex_string(chars: &[char], mut j: usize) -> (String, usize) {
    let n = chars.len();
    let mut text = String::new();
    while j < n {
        if chars[j] == '\\' && j + 1 < n {
            text.push(chars[j]);
            text.push(chars[j + 1]);
            j += 2;
        } else if chars[j] == '"' {
            return (text, j + 1);
        } else {
            text.push(chars[j]);
            j += 1;
        }
    }
    (text, j)
}

/// Tries to lex an `r`/`b`-prefixed literal (raw string, byte string, byte
/// char) or a raw identifier at `i`. Returns `None` when `chars[i]` is just
/// the start of an ordinary identifier.
fn lex_prefixed(chars: &[char], i: usize, ln: usize) -> Option<(Token, usize)> {
    let n = chars.len();
    let mut j = i;
    let mut raw = false;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == 'r' {
            raw = true;
            j += 1;
        }
    } else {
        // chars[i] == 'r'
        raw = true;
        j += 1;
    }
    if j >= n {
        return None;
    }
    // Byte char: b'x' / b'\n'.
    if !raw && chars[j] == '\'' {
        let mut k = j + 1;
        if k < n && chars[k] == '\\' {
            k += 1;
        }
        while k < n && chars[k] != '\'' {
            k += 1;
        }
        return Some((Token { kind: TokKind::Num(None), line: ln }, k + 1));
    }
    if raw && chars[j] == '#' {
        let mut hashes = 0usize;
        while j + hashes < n && chars[j + hashes] == '#' {
            hashes += 1;
        }
        if j + hashes < n && chars[j + hashes] == '"' {
            // Raw string with hashes: ends at `"` followed by `hashes` #s.
            let mut k = j + hashes + 1;
            let start = k;
            while k < n {
                if chars[k] == '"'
                    && chars[k + 1..].iter().take(hashes).filter(|&&c| c == '#').count() == hashes
                {
                    let text: String = chars[start..k].iter().collect();
                    return Some((Token { kind: TokKind::Str(text), line: ln }, k + 1 + hashes));
                }
                k += 1;
            }
            return Some((Token { kind: TokKind::Str(String::new()), line: ln }, n));
        }
        // Raw identifier: r#ident (only with a single leading r).
        if chars[i] == 'r' && hashes == 1 && j + 1 < n && is_ident_start(chars[j + 1]) {
            let mut k = j + 1;
            while k < n && is_ident_continue(chars[k]) {
                k += 1;
            }
            let name: String = chars[j + 1..k].iter().collect();
            return Some((Token { kind: TokKind::Ident(name), line: ln }, k));
        }
        return None;
    }
    if chars[j] == '"' {
        if raw {
            // Raw string without hashes: no escapes, ends at next quote.
            let mut k = j + 1;
            let start = k;
            while k < n && chars[k] != '"' {
                k += 1;
            }
            let text: String = chars[start..k].iter().collect();
            return Some((Token { kind: TokKind::Str(text), line: ln }, k + 1));
        }
        let (text, next) = lex_string(chars, j + 1);
        return Some((Token { kind: TokKind::Str(text), line: ln }, next));
    }
    None
}

/// A recognised `lint:` comment: an exemption (possibly malformed, so the
/// engine can report it) or a `json-reader` declaration.
enum ParsedComment {
    Exempt(Directive),
    Reader(ReaderDecl),
}

/// Parses a lint directive out of a line-comment body (the text after
/// `//`). Returns `None` for ordinary comments; malformed `lint:` directives
/// come back with [`Directive::malformed`] set so the engine can report them.
fn parse_directive(body: &str, line: usize) -> Option<ParsedComment> {
    let t = body.trim_start_matches(['/', '!']).trim_start();
    let rest = t.strip_prefix("lint:")?.trim();
    if let Some(r) = rest.strip_prefix("json-reader") {
        let r = r.trim_start();
        let target = r
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map(|(inner, _)| inner.trim())
            .filter(|t| !t.is_empty() && t.chars().all(|c| c.is_alphanumeric() || c == '_'));
        return Some(match target {
            Some(t) => ParsedComment::Reader(ReaderDecl { line, target: t.to_string() }),
            None => ParsedComment::Exempt(Directive::malformed(
                line,
                "expected `(<WriterType>)` after `json-reader`",
            )),
        });
    }
    let (file_level, rest) = if let Some(r) = rest.strip_prefix("exempt-file") {
        (true, r.trim_start())
    } else if let Some(r) = rest.strip_prefix("exempt") {
        (false, r.trim_start())
    } else {
        return Some(ParsedComment::Exempt(Directive::malformed(
            line,
            "unknown `lint:` directive (expected `exempt(<lint>, <reason>)`, `exempt-file(...)` \
             or `json-reader(<Type>)`)",
        )));
    };
    let Some(after_paren) = rest.strip_prefix('(') else {
        return Some(ParsedComment::Exempt(Directive::malformed(
            line,
            "expected `(<lint>, <reason>)` after `exempt`",
        )));
    };
    let Some(end) = after_paren.rfind(')') else {
        return Some(ParsedComment::Exempt(Directive::malformed(
            line,
            "unclosed `(` in exemption directive",
        )));
    };
    let inner = &after_paren[..end];
    let Some((lint, reason)) = inner.split_once(',') else {
        return Some(ParsedComment::Exempt(Directive::malformed(
            line,
            "expected `, <reason>` after the lint name",
        )));
    };
    Some(ParsedComment::Exempt(Directive {
        line,
        file_level,
        lint: lint.trim().to_string(),
        reason: reason.trim().to_string(),
        malformed: None,
    }))
}

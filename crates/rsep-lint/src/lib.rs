//! `rsep-lint` — workspace invariant linter.
//!
//! The equivalence-proof discipline of this repo rests on hand-maintained
//! coverage invariants that `clippy` cannot see: every config field hashed
//! by its [`Fingerprint`] impl (or a stale `CellKey` silently poisons the
//! result cache), every stats counter folded by `merge()` (or shard merges
//! silently drop data), every hand-rolled `to_json` key read back by
//! `from_json`, attribution code kept behind the `obs` gate, and no
//! wall-clock/hash-order nondeterminism in result-affecting code. This
//! crate machine-checks all five with a dependency-free token-level
//! scanner.
//!
//! Deliberate exclusions are declared in-source:
//!
//! ```text
//! // lint: exempt(<lint>, <reason>)        — covers this line and the next item's line
//! // lint: exempt-file(<lint>, <reason>)   — covers the whole file
//! ```
//!
//! Empty reasons, unknown lint names, malformed directives and exemptions
//! that no longer suppress anything are themselves findings (lint name
//! `exemption`), so the exemption inventory can never rot.
//!
//! [`Fingerprint`]: ../rsep_isa/fingerprint/trait.Fingerprint.html

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod parse;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{Directive, Token};
use parse::ParsedFile;

/// The five enforced lints, in diagnostic-name form.
pub const LINT_NAMES: [&str; 5] =
    ["determinism", "fingerprint-coverage", "json-roundtrip", "merge-coverage", "obs-gate"];

/// Lint name under which exemption-hygiene findings are reported. Not
/// exemptable itself.
pub const EXEMPTION_LINT: &str = "exemption";

/// One finding, rendered as `file:line: lint-name: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Display path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Lint name ([`LINT_NAMES`] or [`EXEMPTION_LINT`]).
    pub lint: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(file: &str, line: usize, lint: &str, message: String) -> Diagnostic {
        Diagnostic { file: file.to_string(), line, lint: lint.to_string(), message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.lint, self.message)
    }
}

/// One source file handed to the linter.
#[derive(Debug)]
pub struct SourceFile {
    /// Display path used in diagnostics (workspace-relative in CLI runs).
    pub path: String,
    /// Owning crate's directory name (scopes the `obs-gate` lint).
    pub crate_name: String,
    /// Full source text.
    pub text: String,
}

/// A lexed and parsed source file, as consumed by the lint passes.
#[derive(Debug)]
pub struct Unit {
    /// Display path used in diagnostics.
    pub path: String,
    /// Owning crate's directory name.
    pub crate_name: String,
    /// Flat token stream (lines non-decreasing).
    pub tokens: Vec<Token>,
    /// Exemption directives, in source order.
    pub directives: Vec<Directive>,
    /// Items and gated spans.
    pub parsed: ParsedFile,
}

/// Lints a set of in-memory sources and returns the surviving diagnostics,
/// sorted by `(file, line, lint, message)`. Findings inside `#[cfg(test)]`
/// spans are dropped; findings matched by a well-formed exemption are
/// suppressed; exemption-hygiene problems are appended as `exemption`
/// findings.
pub fn lint_sources(files: Vec<SourceFile>) -> Vec<Diagnostic> {
    let units: Vec<Unit> = files
        .into_iter()
        .map(|f| {
            let lexed = lexer::lex(&f.text);
            let parsed = parse::parse_file(&lexed.tokens);
            Unit {
                path: f.path,
                crate_name: f.crate_name,
                tokens: lexed.tokens,
                directives: lexed.directives,
                parsed,
            }
        })
        .collect();

    let mut raw: Vec<Diagnostic> = Vec::new();
    raw.extend(lints::fingerprint_coverage(&units));
    raw.extend(lints::merge_coverage(&units));
    raw.extend(lints::json_roundtrip(&units));
    raw.extend(lints::obs_gate(&units));
    raw.extend(lints::determinism(&units));

    let by_path: BTreeMap<&str, usize> =
        units.iter().enumerate().map(|(i, u)| (u.path.as_str(), i)).collect();
    // For each directive: the line it is on plus the line of the next token
    // after it (the item the comment annotates).
    let covered: Vec<Vec<(usize, Option<usize>)>> = units
        .iter()
        .map(|u| {
            u.directives
                .iter()
                .map(|d| {
                    let split = u.tokens.partition_point(|t| t.line <= d.line);
                    (d.line, u.tokens.get(split).map(|t| t.line))
                })
                .collect()
        })
        .collect();
    let mut used: Vec<Vec<bool>> = units.iter().map(|u| vec![false; u.directives.len()]).collect();

    let mut kept: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let Some(&ui) = by_path.get(d.file.as_str()) else {
            kept.push(d);
            continue;
        };
        let u = &units[ui];
        if u.parsed.test_lines.iter().any(|&(a, b)| a <= d.line && d.line <= b) {
            continue;
        }
        let mut suppressed = false;
        for (di, dir) in u.directives.iter().enumerate() {
            if dir.malformed.is_some()
                || dir.reason.is_empty()
                || !LINT_NAMES.contains(&dir.lint.as_str())
                || dir.lint != d.lint
            {
                continue;
            }
            let (own, next) = covered[ui][di];
            if dir.file_level || d.line == own || Some(d.line) == next {
                used[ui][di] = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }

    // Exemption hygiene: malformed, unknown lint, empty reason, unused.
    for (ui, u) in units.iter().enumerate() {
        for (di, dir) in u.directives.iter().enumerate() {
            let in_tests = u.parsed.test_lines.iter().any(|&(a, b)| a <= dir.line && dir.line <= b);
            if in_tests {
                continue;
            }
            if let Some(msg) = &dir.malformed {
                kept.push(Diagnostic::new(&u.path, dir.line, EXEMPTION_LINT, msg.clone()));
            } else if !LINT_NAMES.contains(&dir.lint.as_str()) {
                kept.push(Diagnostic::new(
                    &u.path,
                    dir.line,
                    EXEMPTION_LINT,
                    format!("exemption names unknown lint `{}`", dir.lint),
                ));
            } else if dir.reason.is_empty() {
                kept.push(Diagnostic::new(
                    &u.path,
                    dir.line,
                    EXEMPTION_LINT,
                    format!("exemption for `{}` must carry a non-empty reason", dir.lint),
                ));
            } else if !used[ui][di] {
                kept.push(Diagnostic::new(
                    &u.path,
                    dir.line,
                    EXEMPTION_LINT,
                    format!("exemption for `{}` does not suppress any finding", dir.lint),
                ));
            }
        }
    }

    kept.sort();
    kept.dedup();
    kept
}

/// Lints every `crates/*/src/**/*.rs` under `root`. Returns the surviving
/// diagnostics plus the number of files scanned. `benches/`, `tests/` and
/// fixture directories are outside `src/` and therefore never scanned.
pub fn lint_workspace(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for cdir in &crate_dirs {
        let src = cdir.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name =
            cdir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths)?;
        paths.sort();
        for p in paths {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            let display = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile { path: display, crate_name: crate_name.clone(), text });
        }
    }
    if files.is_empty() {
        return Err(format!("no crates/*/src/**/*.rs files under {}", root.display()));
    }
    let count = files.len();
    Ok((lint_sources(files), count))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|ext| ext == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

//! `rsep-lint` — workspace invariant linter.
//!
//! The equivalence-proof discipline of this repo rests on hand-maintained
//! coverage invariants that `clippy` cannot see: every config field hashed
//! by its [`Fingerprint`] impl (or a stale `CellKey` silently poisons the
//! result cache), every stats counter folded by `merge()` (or shard merges
//! silently drop data), every hand-rolled `to_json` key read back by
//! `from_json`, attribution code kept behind the `obs` gate, and no
//! wall-clock/hash-order nondeterminism in result-affecting code.
//!
//! The linter runs in two passes. Pass 1 lexes and parses every scanned
//! file (no `syn`, no dependencies — a token-level scanner) and builds a
//! workspace [symbol graph](graph::Graph): every struct/enum/trait/fn/const
//! with its crate, file, line, visibility and `#[cfg]`/`obs!` gate, plus
//! every identifier reference resolved by name across all crates. Pass 2
//! runs the lints — the per-file coverage checks plus the cross-file
//! queries (`cfg-gate-consistency`, `dead-pub-api`,
//! `fingerprint-exclusion-audit`, the bit-level `packed-layout` prover and
//! the cross-crate half of `json-roundtrip`).
//!
//! Deliberate exclusions are declared in-source:
//!
//! ```text
//! // lint: exempt(<lint>, <reason>)        — covers this line and the next item's line
//! // lint: exempt-file(<lint>, <reason>)   — covers the whole file
//! // lint: json-reader(<Type>)             — next fn's get("...") keys must be
//! //                                         emitted by <Type>'s to_json
//! ```
//!
//! `fingerprint-coverage` exemptions must additionally cite the equivalence
//! test proving the exclusion safe — `; proven-by <file>` at the end of the
//! reason — which the `fingerprint-exclusion-audit` lint verifies exists
//! and references the excluded field.
//!
//! Empty reasons, unknown lint names, malformed directives and exemptions
//! that no longer suppress anything are themselves findings (lint name
//! `exemption`), so the exemption inventory can never rot.
//!
//! [`Fingerprint`]: ../rsep_isa/fingerprint/trait.Fingerprint.html

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod graph;
pub mod lexer;
pub mod lints;
pub mod packed;
pub mod parse;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{Directive, ReaderDecl, Token};
use parse::ParsedFile;

/// The ten enforced lints, in diagnostic-name form.
pub const LINT_NAMES: [&str; 10] = [
    "bin-roundtrip",
    "cfg-gate-consistency",
    "dead-pub-api",
    "determinism",
    "fingerprint-coverage",
    "fingerprint-exclusion-audit",
    "json-roundtrip",
    "merge-coverage",
    "obs-gate",
    "packed-layout",
];

/// Lint name under which exemption-hygiene findings are reported. Not
/// exemptable itself.
pub const EXEMPTION_LINT: &str = "exemption";

/// One finding, rendered as `file:line: lint-name: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Display path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Lint name ([`LINT_NAMES`] or [`EXEMPTION_LINT`]).
    pub lint: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(file: &str, line: usize, lint: &str, message: String) -> Diagnostic {
        Diagnostic { file: file.to_string(), line, lint: lint.to_string(), message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.lint, self.message)
    }
}

/// A diagnostic plus whether an exemption suppressed it. Exempted findings
/// are kept (for `--json` and exemption-inventory tooling) but do not fail
/// the lint run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// The diagnostic.
    pub diag: Diagnostic,
    /// Suppressed by a well-formed `// lint: exempt(...)` directive.
    pub exempted: bool,
}

/// Which source tree a file came from; decides which lints apply. Coverage
/// invariants (fingerprint/merge/json/obs/packed) bind library code only;
/// determinism, exemption hygiene and the symbol-graph reference scan run
/// everywhere, so a bench or test referencing a pub item keeps it alive
/// for `dead-pub-api`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tree {
    /// `src/` of a crate (library or binary code).
    Src,
    /// `tests/` integration tests.
    Tests,
    /// `benches/` benchmarks.
    Benches,
    /// `examples/`.
    Examples,
}

/// One source file handed to the linter.
#[derive(Debug)]
pub struct SourceFile {
    /// Display path used in diagnostics (workspace-relative in CLI runs).
    pub path: String,
    /// Owning crate's directory name (scopes the `obs-gate` lint).
    pub crate_name: String,
    /// Source tree the file belongs to.
    pub tree: Tree,
    /// Full source text.
    pub text: String,
}

/// A lexed and parsed source file, as consumed by the lint passes.
#[derive(Debug)]
pub struct Unit {
    /// Display path used in diagnostics.
    pub path: String,
    /// Owning crate's directory name.
    pub crate_name: String,
    /// Source tree the file belongs to.
    pub tree: Tree,
    /// Compilation-unit key: `crate:<name>` for a crate's library tree,
    /// `file:<path>` for binaries, tests, benches and examples (each is its
    /// own unit). `dead-pub-api` counts references across these keys.
    pub unit_key: String,
    /// Flat token stream (lines non-decreasing).
    pub tokens: Vec<Token>,
    /// Exemption directives, in source order.
    pub directives: Vec<Directive>,
    /// `json-reader(<Type>)` declarations, in source order.
    pub readers: Vec<ReaderDecl>,
    /// Items and gated spans.
    pub parsed: ParsedFile,
}

fn unit_key(tree: Tree, crate_name: &str, path: &str) -> String {
    let lib_tree = tree == Tree::Src && !path.contains("/src/bin/") && !path.ends_with("/main.rs");
    if lib_tree {
        format!("crate:{crate_name}")
    } else {
        format!("file:{path}")
    }
}

/// Lints a set of in-memory sources and returns the surviving (non-exempt)
/// diagnostics, sorted by `(file, line, lint, message)`.
pub fn lint_sources(files: Vec<SourceFile>) -> Vec<Diagnostic> {
    lint_sources_with_root(files, None)
        .into_iter()
        .filter(|f| !f.exempted)
        .map(|f| f.diag)
        .collect()
}

/// Full engine: lints a set of in-memory sources and returns all findings,
/// exempted ones included, sorted by `(file, line, lint, message)`.
/// Findings inside `#[cfg(test)]` spans are dropped; findings matched by a
/// well-formed exemption are kept with `exempted = true`;
/// exemption-hygiene problems are appended as `exemption` findings. `root`
/// (when given) resolves `proven-by` paths that are outside the scanned
/// set.
pub fn lint_sources_with_root(files: Vec<SourceFile>, root: Option<&Path>) -> Vec<Finding> {
    let units: Vec<Unit> = files
        .into_iter()
        .map(|f| {
            let lexed = lexer::lex(&f.text);
            let parsed = parse::parse_file(&lexed.tokens);
            let key = unit_key(f.tree, &f.crate_name, &f.path);
            Unit {
                path: f.path,
                crate_name: f.crate_name,
                tree: f.tree,
                unit_key: key,
                tokens: lexed.tokens,
                directives: lexed.directives,
                readers: lexed.readers,
                parsed,
            }
        })
        .collect();

    let mut raw: Vec<Diagnostic> = Vec::new();
    raw.extend(lints::fingerprint_coverage(&units));
    raw.extend(lints::merge_coverage(&units));
    raw.extend(lints::json_roundtrip(&units));
    raw.extend(lints::json_reader_checks(&units));
    raw.extend(lints::bin_roundtrip(&units));
    raw.extend(lints::obs_gate(&units));
    raw.extend(lints::determinism(&units));
    for u in units.iter().filter(|u| u.tree == Tree::Src) {
        raw.extend(packed::packed_layout_unit(u));
    }
    let g = graph::Graph::build(&units);
    raw.extend(lints::cfg_gate_consistency(&units, &g));
    // With a single compilation unit there is no possible external
    // consumer, so dead-pub-api would flag everything `pub`; it only means
    // something over a multi-unit workspace.
    if units.len() >= 2 {
        raw.extend(lints::dead_pub_api(&units, &g));
    }
    raw.extend(lints::fingerprint_exclusion_audit(&units, root));

    let by_path: BTreeMap<&str, usize> =
        units.iter().enumerate().map(|(i, u)| (u.path.as_str(), i)).collect();
    // For each directive: the line it is on plus the line of the next token
    // after it (the item the comment annotates).
    let covered: Vec<Vec<(usize, Option<usize>)>> = units
        .iter()
        .map(|u| {
            u.directives
                .iter()
                .map(|d| {
                    let split = u.tokens.partition_point(|t| t.line <= d.line);
                    (d.line, u.tokens.get(split).map(|t| t.line))
                })
                .collect()
        })
        .collect();
    let mut used: Vec<Vec<bool>> = units.iter().map(|u| vec![false; u.directives.len()]).collect();

    let mut kept: Vec<Finding> = Vec::new();
    for d in raw {
        let Some(&ui) = by_path.get(d.file.as_str()) else {
            kept.push(Finding { diag: d, exempted: false });
            continue;
        };
        let u = &units[ui];
        if u.parsed.test_lines.iter().any(|&(a, b)| a <= d.line && d.line <= b) {
            continue;
        }
        let mut suppressed = false;
        for (di, dir) in u.directives.iter().enumerate() {
            if dir.malformed.is_some()
                || dir.reason.is_empty()
                || !LINT_NAMES.contains(&dir.lint.as_str())
                || dir.lint != d.lint
            {
                continue;
            }
            let (own, next) = covered[ui][di];
            if dir.file_level || d.line == own || Some(d.line) == next {
                used[ui][di] = true;
                suppressed = true;
                break;
            }
        }
        kept.push(Finding { diag: d, exempted: suppressed });
    }

    // Exemption hygiene: malformed, unknown lint, empty reason, unused.
    for (ui, u) in units.iter().enumerate() {
        for (di, dir) in u.directives.iter().enumerate() {
            let in_tests = u.parsed.test_lines.iter().any(|&(a, b)| a <= dir.line && dir.line <= b);
            if in_tests {
                continue;
            }
            let diag = if let Some(msg) = &dir.malformed {
                Some(Diagnostic::new(&u.path, dir.line, EXEMPTION_LINT, msg.clone()))
            } else if !LINT_NAMES.contains(&dir.lint.as_str()) {
                Some(Diagnostic::new(
                    &u.path,
                    dir.line,
                    EXEMPTION_LINT,
                    format!("exemption names unknown lint `{}`", dir.lint),
                ))
            } else if dir.reason.is_empty() {
                Some(Diagnostic::new(
                    &u.path,
                    dir.line,
                    EXEMPTION_LINT,
                    format!("exemption for `{}` must carry a non-empty reason", dir.lint),
                ))
            } else if !used[ui][di] {
                Some(Diagnostic::new(
                    &u.path,
                    dir.line,
                    EXEMPTION_LINT,
                    format!("exemption for `{}` does not suppress any finding", dir.lint),
                ))
            } else {
                None
            };
            if let Some(d) = diag {
                kept.push(Finding { diag: d, exempted: false });
            }
        }
    }

    kept.sort();
    kept.dedup();
    kept
}

/// Lints the workspace under `root` and returns the surviving (non-exempt)
/// diagnostics plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let (findings, scanned) = lint_workspace_full(root)?;
    Ok((findings.into_iter().filter(|f| !f.exempted).map(|f| f.diag).collect(), scanned))
}

/// Lints the workspace under `root` and returns all findings (exempted ones
/// included) plus the number of files scanned. Scans `crates/*/{src,tests,
/// benches,examples}` and the root `src/`, `tests/`, `benches/` and
/// `examples/` trees; fixture directories are outside all of these and
/// therefore never scanned.
pub fn lint_workspace_full(root: &Path) -> Result<(Vec<Finding>, usize), String> {
    const TREES: [(&str, Tree); 4] = [
        ("src", Tree::Src),
        ("tests", Tree::Tests),
        ("benches", Tree::Benches),
        ("examples", Tree::Examples),
    ];
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    // The workspace root is itself a crate (the facade); scan its trees
    // last so crate files sort first in diagnostics of equal line.
    crate_dirs.push(root.to_path_buf());
    let mut files = Vec::new();
    for cdir in &crate_dirs {
        let crate_name = if cdir == root {
            "rsep".to_string()
        } else {
            cdir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
        };
        for (sub, tree) in TREES {
            let dir = cdir.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            collect_rs(&dir, &mut paths)?;
            paths.sort();
            for p in paths {
                let text = std::fs::read_to_string(&p)
                    .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
                let display = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push(SourceFile {
                    path: display,
                    crate_name: crate_name.clone(),
                    tree,
                    text,
                });
            }
        }
    }
    if files.is_empty() {
        return Err(format!("no source files under {}", root.display()));
    }
    let count = files.len();
    Ok((lint_sources_with_root(files, Some(root)), count))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|ext| ext == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

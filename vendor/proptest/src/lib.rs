//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the subset of proptest its test suites actually use (see
//! `vendor/README.md`): the [`proptest!`] macro, [`prelude::any`],
//! integer-range / tuple / [`collection::vec`] strategies, and the
//! `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: each property runs over a fixed number of deterministically
//! generated cases (256 by default, `PROPTEST_CASES` to override), so
//! failures are reproducible from the panic message alone.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one property, seeded from the property name
    /// so distinct properties explore distinct streams.
    pub fn for_property(name: &str) -> TestRng {
        let mut state = 0xC0FF_EE00_5EED_0001u64;
        for b in name.bytes() {
            state = state.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `span` (> 0).
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A source of values for one property argument.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for the full domain of a type; see [`prelude::any`].
#[derive(Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty strategy range");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u64 + 1;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing a `Vec` of `elem` values with a length drawn from
    /// `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` to override).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over [`cases`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($(&($strategy),)*);
                let mut __rng = $crate::TestRng::for_property(stringify!($name));
                for __case in 0..$crate::cases() {
                    let ($($arg,)*) = {
                        let ($($arg,)*) = &__strategies;
                        ($($crate::Strategy::sample(*$arg, &mut __rng),)*)
                    };
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The usual `use proptest::prelude::*` imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, Strategy};

    /// Strategy over the full domain of `T` (like `proptest::prelude::any`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any::<T>(core::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro wires arguments and runs the body.
        #[test]
        fn ranges_respect_bounds(x in 3u8..=9, y in 1usize..5, v in any::<u64>()) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((1..5).contains(&y));
            prop_assert_eq!(v, v);
        }

        /// Vec strategies produce lengths within the size range.
        #[test]
        fn vec_lengths_in_range(items in collection::vec((0u16..64, 0u64..1000), 1..200)) {
            prop_assert!(!items.is_empty() && items.len() < 200);
            for (a, b) in items {
                prop_assert!(a < 64);
                prop_assert_ne!(b, 1000);
            }
        }
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the API subset its `benches/` targets use (see `vendor/README.md`):
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a short measurement window, and
//! the mean, minimum and maximum per-iteration times are printed. There are
//! no HTML reports and no statistical regression analysis — just honest
//! wall-clock numbers that make `cargo bench` work offline.
//!
//! Set `CRITERION_MEASURE_MS` / `CRITERION_WARMUP_MS` to change the window
//! sizes (e.g. in CI smoke runs).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting a benchmark
/// body (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Filled in by [`Bencher::iter`].
    result: Option<Measurement>,
}

/// One benchmark's collected timings.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Total iterations measured.
    pub iterations: u64,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest observed batch, per iteration.
    pub min: Duration,
    /// Slowest observed batch, per iteration.
    pub max: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring batches until the
    /// measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        // Aim for ~20 batches across the measurement window.
        let elapsed = warm_start.elapsed().max(Duration::from_micros(1));
        let per_iter = elapsed / warm_iters.max(1) as u32;
        let batch = ((self.measure.as_nanos() / 20).max(1) / per_iter.as_nanos().max(1))
            .clamp(1, u128::from(u32::MAX)) as u64;

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        while total < self.measure {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let t = start.elapsed();
            let per = t / batch as u32;
            min = min.min(per);
            max = max.max(per);
            total += t;
            iterations += batch;
        }
        self.result =
            Some(Measurement { iterations, mean: total / iterations.max(1) as u32, min, max });
    }
}

/// Benchmark registry / runner (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

fn env_ms(name: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default_ms);
    Duration::from_millis(ms)
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warmup: env_ms("CRITERION_WARMUP_MS", 300),
            measure: env_ms("CRITERION_MEASURE_MS", 1_000),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // `cargo bench -- <filter>` support: skip non-matching ids.
        let filter: Vec<String> =
            std::env::args().skip(1).filter(|a| !a.starts_with("--")).collect();
        if !filter.is_empty() && !filter.iter().any(|needle| id.contains(needle.as_str())) {
            return self;
        }
        let mut bencher = Bencher { warmup: self.warmup, measure: self.measure, result: None };
        f(&mut bencher);
        match bencher.result {
            Some(m) => println!(
                "{id:<50} time: [{} {} {}]  ({} iters)",
                format_duration(m.min),
                format_duration(m.mean),
                format_duration(m.max),
                m.iterations
            ),
            None => println!("{id:<50} (no measurement: Bencher::iter never called)"),
        }
        self
    }
}

/// Declares a benchmark group function, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_a_trivial_routine() {
        let mut b = Bencher {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(10),
            result: None,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        let m = b.result.expect("measurement recorded");
        assert!(m.iterations > 0);
        assert!(m.min <= m.mean && m.mean <= m.max);
    }

    #[test]
    fn duration_formatting_picks_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.000 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.000 ms");
        assert_eq!(format_duration(Duration::from_secs(1)), "1.000 s");
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the small API surface it actually uses (see `vendor/README.md`):
//!
//! * [`rngs::SmallRng`] — xoshiro256++, the same algorithm real `rand 0.8`
//!   uses for `SmallRng` on 64-bit targets, seeded with SplitMix64 exactly
//!   like `rand_core`'s `seed_from_u64`;
//! * the [`Rng`] extension trait with `gen`, `gen_bool` and `gen_range`;
//! * the [`SeedableRng`] trait with `seed_from_u64`.
//!
//! The generator is fully deterministic for a given seed, which is what the
//! campaign engine's reproducibility guarantees rest on.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Core RNG abstraction: a source of raw 64-bit randomness.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1), as real rand's Standard does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Width of the half-open span `[low, high)` as a `u64`.
    fn span(low: Self, high: Self) -> u64;
    /// `low + offset`, where `offset < span`.
    fn offset(low: Self, offset: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn span(low: $t, high: $t) -> u64 {
                (high as i128 - low as i128) as u64
            }
            fn offset(low: $t, offset: u64) -> $t {
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by [`Rng::gen_range`] (half-open or inclusive).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by widening multiplication (Lemire).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let span = T::span(self.start, self.end);
        assert!(span > 0, "cannot sample from an empty range");
        T::offset(self.start, uniform_below(rng, span))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        let span = T::span(start, end).wrapping_add(1);
        if span == 0 {
            // Full-domain inclusive range: any value is uniform.
            return T::offset(start, rng.next_u64());
        }
        T::offset(start, uniform_below(rng, span))
    }
}

/// Extension trait with the convenience sampling methods of real `rand`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (panics unless `0 <= p <= 1`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p >= 1.0 {
            // Consume one draw so code paths stay aligned.
            let _ = self.next_u64();
            return true;
        }
        // Bernoulli via a 64-bit integer threshold, like rand 0.8.
        let threshold = (p * 2f64.powi(64)) as u64;
        self.next_u64() < threshold
    }

    /// Draws uniformly from a (half-open or inclusive) integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind real `rand 0.8`'s `SmallRng` on
    /// 64-bit platforms. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_lies_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..=10);
            assert!((5..=10).contains(&v));
        }
        let v = rng.gen_range(-3i64..3);
        assert!((-3..3).contains(&v));
    }
}
